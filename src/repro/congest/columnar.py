"""The columnar message plane: typed payload columns over the CSR topology.

The object plane (:mod:`repro.congest.runtime.scheduler`) materializes
every round's traffic as per-vertex dicts of
:class:`~repro.congest.message.Message` objects — flexible, but each
message costs dict writes, payload sizing, and Python-level inbox
iteration.  The algorithms this repository actually benchmarks exchange
*small fixed-width numeric payloads* (ids, colors, levels, coin flips) —
or, for the Lemma 2.2/2.5 gathering routers, *ragged integer sequences*
(walk-token lists, schedule descriptions) typed as
:class:`~repro.congest.message.VarColumn` fields over a shared payload
pool.  The columnar plane exploits that:

* an algorithm declares a typed schema
  (:class:`~repro.congest.message.ColumnarSpec`, e.g.
  ``(("kind", uint8), ("value", uint32))``) and is written as a
  *round-vectorized* program (:class:`ColumnarAlgorithm`): one
  ``on_round(ctx)`` call per round for the whole graph, not one per
  vertex;
* emission is ``ctx.emit_columns(senders, **fields)`` (broadcast over the
  compiled CSR neighbour segments) or
  ``ctx.emit_columns(senders, receivers, **fields)`` (unicast) — numpy
  arrays in, no per-message Python objects;
* variable-width fields emit through ``ctx.emit_var(senders[, receivers],
  name=(pool, lengths))``: each message's ragged sequence is one segment
  of a shared int64 pool, fanned out / permuted / delivered by CSR
  scatters (:func:`_ragged_gather`) and consumed per vertex by the
  zero-copy :meth:`ColumnarContext.gather_var`;
* the engine delivers the entire round as structured columns laid out
  over the CSR topology: a sender column, one column per payload field,
  and segment offsets per receiver (``inbox.indptr``) — the *per-vertex
  numpy inboxes* are slices of those global arrays
  (:meth:`ColumnarInbox.for_vertex`);
* per-round metric accounting (message count, ``deg × bits``, peak edge
  load) is computed as array reductions over the same columns, with the
  bit-sizing rule shared with :func:`~repro.congest.message.bits_for_payload`
  so the counters stay byte-identical to the object plane;
* inbox consumption is :meth:`ColumnarContext.reduce_neighbors`
  (``min | max | sum | argmin | argmax | any | count``) — single
  segmented-numpy operations, so MIS coin comparison, Luby priority
  argmin, coloring conflict detection, and BFS level relaxation never
  iterate an inbox in Python.

Differential reference
----------------------
:func:`execute_columnar` has a ``reference=True`` mode — the *dict plane*
for columnar programs.  It runs the same round-vectorized algorithm but
expands every emission into per-message Python
:class:`~repro.congest.message.Message` objects (payload = the field
tuple, or the bare value for single-field specs), validates and counts
each one exactly as the seed executor would (``bits_for_payload``
sizing, per-message ``record_message``/``record_edge_load``), and
rebuilds the next inbox the slow way.  ``tests/test_columnar.py`` and
``tests/test_delivery_soak.py`` assert the fast path byte-identical to
it — and the ported classics additionally byte-identical to their
object-plane originals (``LubyMISAlgorithm`` et al.) end to end.

Ordering contract: a round's inbox arrays are grouped by receiver
(CSR-segment order) and, within a receiver, ordered by emission order —
a stable sort of the round's traffic by receiver.  All reductions except
``argmin``/``argmax`` are order-insensitive; the arg reductions break
ties toward the earliest emitted message.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro.congest.message import ColumnarSpec, Message, VarColumn
from repro.congest.metrics import ScalarAccountant
from repro.congest.runtime.rng import (
    ExactRng,
    RngPlan,
    rng_state_for,
    supports_vectorized,
)
from repro.congest.runtime.scheduler import run_rounds

_INT64_MAX = np.iinfo(np.int64).max
_INT64_MIN = np.iinfo(np.int64).min


def _cumsum0(counts: np.ndarray) -> np.ndarray:
    out = np.empty(len(counts) + 1, dtype=np.int64)
    out[0] = 0
    np.cumsum(counts, out=out[1:])
    return out


def _ragged_gather(pool, starts, lengths):
    """Concatenate the pool segments ``[starts[i], starts[i]+lengths[i])``
    — the CSR scatter every variable-width delivery step reduces to
    (broadcast fan-out, receiver-sort permutation, masked gathers).
    Pure array ops: one arange minus a repeat of the output offsets plus
    a repeat of the input offsets."""
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=pool.dtype)
    out_starts = _cumsum0(lengths)
    idx = (
        np.arange(total, dtype=np.int64)
        - np.repeat(out_starts[:-1], lengths)
        + np.repeat(starts, lengths)
    )
    return pool[idx]


def _segment_reduce(values, indptr, ufunc, empty, out_dtype=None):
    """Reduce ``values`` over the segments ``[indptr[i], indptr[i+1])``.

    Handles empty segments (they get ``empty``), which bare
    ``ufunc.reduceat`` silently corrupts: passing only the non-empty
    starts makes each reduceat slice span exactly one segment, because
    empty segments contribute no elements between consecutive starts.
    """
    n = len(indptr) - 1
    counts = indptr[1:] - indptr[:-1]
    nonempty = counts > 0
    out = np.full(n, empty, dtype=out_dtype if out_dtype is not None else values.dtype)
    if values.size and nonempty.any():
        out[nonempty] = ufunc.reduceat(values, indptr[:-1][nonempty])
    return out


class ColumnarInbox:
    """One round's delivered traffic as receiver-segmented columns.

    ``senders[indptr[i]:indptr[i+1]]`` are the dense sender ids of vertex
    ``i``'s messages; each payload field is a parallel column in the
    spec's declared dtype.  This *is* the per-vertex numpy inbox — a
    vertex's view is a zero-copy slice (:meth:`for_vertex`), and whole
    rounds reduce in one segmented op (:meth:`reduce`).

    Variable-width fields (:class:`~repro.congest.message.VarColumn`)
    are stored ragged: ``var_pools[name]`` is one shared int64 payload
    pool for the whole round and ``var_indptr[name]`` the per-*message*
    offset index into it (message ``k``'s sequence is
    ``pool[var_indptr[k]:var_indptr[k+1]]``).  Because messages are
    receiver-sorted, every vertex's — and, on a grid, every trial
    block's — var payload occupies one contiguous pool segment, which is
    what makes :meth:`gather_var` a zero-copy re-index.
    """

    __slots__ = (
        "n", "senders", "indptr", "columns", "var_pools", "var_indptr",
        "_receivers",
    )

    def __init__(self, n, senders, indptr, columns, var_pools=None,
                 var_indptr=None) -> None:
        self.n = n
        self.senders = senders
        self.indptr = indptr
        self.columns = columns
        self.var_pools = {} if var_pools is None else var_pools
        self.var_indptr = {} if var_indptr is None else var_indptr
        self._receivers = None

    @classmethod
    def empty(cls, n: int, spec: ColumnarSpec) -> "ColumnarInbox":
        return cls(
            n,
            np.empty(0, dtype=np.int64),
            np.zeros(n + 1, dtype=np.int64),
            {name: np.empty(0, dtype=dtype) for name, dtype in spec.fields},
            {name: np.empty(0, dtype=np.int64) for name in spec.var_names},
            {name: np.zeros(1, dtype=np.int64) for name in spec.var_names},
        )

    def __len__(self) -> int:
        return len(self.senders)

    def column(self, name: str) -> np.ndarray:
        return self.columns[name]

    @property
    def counts(self) -> np.ndarray:
        """Per-vertex message counts (``np.diff(indptr)``)."""
        return self.indptr[1:] - self.indptr[:-1]

    def receivers(self) -> np.ndarray:
        """Per-message receiver ids (the segment each message lies in)."""
        if self._receivers is None:
            self._receivers = np.repeat(
                np.arange(self.n, dtype=np.int64), self.counts
            )
        return self._receivers

    def for_vertex(self, i: int) -> dict:
        """Vertex ``i``'s inbox as zero-copy array slices.  Var fields
        appear as a list of per-message value arrays."""
        start, stop = int(self.indptr[i]), int(self.indptr[i + 1])
        view = {"senders": self.senders[start:stop]}
        for name, column in self.columns.items():
            view[name] = column[start:stop]
        for name, pool in self.var_pools.items():
            indptr = self.var_indptr[name]
            view[name] = [
                pool[int(indptr[k]):int(indptr[k + 1])]
                for k in range(start, stop)
            ]
        return view

    def var(self, name: str) -> tuple:
        """Var field ``name`` as ``(pool, per-message indptr)`` — message
        ``k``'s sequence is ``pool[indptr[k]:indptr[k+1]]``."""
        return self.var_pools[name], self.var_indptr[name]

    def var_lengths(self, name: str) -> np.ndarray:
        """Per-message sequence lengths of var field ``name``."""
        indptr = self.var_indptr[name]
        return indptr[1:] - indptr[:-1]

    def gather_var(self, name: str, where=None) -> tuple:
        """Per-vertex concatenation of the received var sequences.

        Returns ``(pool, vertex_indptr)``: vertex ``i``'s received
        values, concatenated in message (emission) order, are
        ``pool[vertex_indptr[i]:vertex_indptr[i+1]]``.  With no mask
        this is **zero-copy** — messages are already receiver-sorted, so
        the vertex boundaries are just the message-level offset index
        sampled at each vertex's message boundaries.  ``where`` is an
        optional per-message bool mask; masked-out messages contribute
        no values (this path gathers).

        >>> inbox = ColumnarInbox(
        ...     2,
        ...     np.array([1], dtype=np.int64),      # one message, to 0
        ...     np.array([0, 1, 1], dtype=np.int64),
        ...     {},
        ...     {"ids": np.array([4, 5], dtype=np.int64)},
        ...     {"ids": np.array([0, 2], dtype=np.int64)},
        ... )
        >>> pool, vertex_indptr = inbox.gather_var("ids")
        >>> pool.tolist(), vertex_indptr.tolist()
        ([4, 5], [0, 2, 2])
        """
        pool = self.var_pools[name]
        indptr = self.var_indptr[name]
        if where is None:
            return pool, indptr[self.indptr]
        where = np.asarray(where, dtype=bool)
        keep = np.flatnonzero(where)
        lengths = (indptr[1:] - indptr[:-1])[keep]
        selected = _ragged_gather(pool, indptr[:-1][keep], lengths)
        per_vertex = np.zeros(self.n, dtype=np.int64)
        np.add.at(per_vertex, self.receivers()[keep], lengths)
        return selected, _cumsum0(per_vertex)

    def reduce(self, op, values=None, where=None, empty=None):
        """One segmented reduction over every vertex's inbox at once.

        Parameters
        ----------
        op:
            ``"min" | "max" | "sum" | "argmin" | "argmax" | "any" |
            "count"``.
        values:
            A field name, or a per-message array (e.g. a derived
            combined key).  Unused for ``"count"``.
        where:
            Optional per-message bool mask; masked-out messages are
            invisible to the reduction.
        empty:
            Value for vertices with no (selected) messages.  Defaults:
            ``sum`` → 0, ``any`` → False, ``min`` → int64 max,
            ``max`` → int64 min, ``argmin``/``argmax`` → -1.

        ``argmin``/``argmax`` return *message indices into this inbox*
        (usable to index ``senders`` or any column), -1 where empty;
        ties break toward the earliest emitted message.

        >>> inbox = ColumnarInbox(
        ...     2,
        ...     np.array([1, 1], dtype=np.int64),   # vertex 0 got 2 msgs
        ...     np.array([0, 2, 2], dtype=np.int64),
        ...     {"value": np.array([5, 3], dtype=np.int32)},
        ... )
        >>> inbox.reduce("min", "value", empty=-1).tolist()
        [3, -1]
        >>> inbox.reduce("count").tolist()
        [2, 0]
        """
        n = self.n
        indptr = self.indptr
        original = None
        if where is not None:
            where = np.asarray(where, dtype=bool)
            selected = self.receivers()[where]
            indptr = _cumsum0(np.bincount(selected, minlength=n))
            original = np.flatnonzero(where)
        if op == "count":
            return indptr[1:] - indptr[:-1]
        if isinstance(values, str):
            values = self.columns[values]
        values = np.asarray(values)
        if original is not None:
            values = values[original]
        if op == "any":
            out = _segment_reduce(
                values.astype(bool), indptr, np.logical_or,
                False if empty is None else empty, np.bool_,
            )
            return out
        promoted = values.astype(np.int64) if values.dtype != np.int64 else values
        if op == "sum":
            return _segment_reduce(
                promoted, indptr, np.add, 0 if empty is None else empty
            )
        if op == "min":
            return _segment_reduce(
                promoted, indptr, np.minimum,
                _INT64_MAX if empty is None else empty,
            )
        if op == "max":
            return _segment_reduce(
                promoted, indptr, np.maximum,
                _INT64_MIN if empty is None else empty,
            )
        if op in ("argmin", "argmax"):
            ufunc = np.minimum if op == "argmin" else np.maximum
            sentinel = _INT64_MAX if op == "argmin" else _INT64_MIN
            extreme = _segment_reduce(promoted, indptr, ufunc, sentinel)
            count = len(promoted)
            if count == 0:
                return np.full(n, -1 if empty is None else empty, dtype=np.int64)
            seg = (
                self.receivers() if original is None
                else self.receivers()[original]
            )
            hit = promoted == extreme[seg]
            candidate = np.where(hit, np.arange(count, dtype=np.int64), count)
            arg = _segment_reduce(candidate, indptr, np.minimum, count)
            missing = arg >= count
            if original is not None:
                arg = np.where(missing, 0, arg)
                arg = original[arg]
            arg = np.where(missing, -1 if empty is None else empty, arg)
            return arg
        raise ValueError(f"unknown reduction {op!r}")


class ColumnarContext:
    """The whole-graph view handed to a :class:`ColumnarAlgorithm`.

    Attributes
    ----------
    n, vertices:
        Vertex count and the dense-index → vertex-id table (``graph.nodes``
        order, like the object plane's output keying).
    indptr, indices, degrees:
        The compiled CSR adjacency (``int64``); ``degrees`` is the numpy
        degree table.
    repr_rank:
        Per dense index, the vertex's rank in ``sorted(vertices, key=repr)``
        — the vectorized stand-in for the object plane's
        ``repr``-comparison tie-breaks (identical outcomes whenever vertex
        reprs are distinct, which holds for every graph in this
        repository).
    inputs:
        Per-vertex inputs aligned to dense indices (``None`` where absent).
    rng:
        The run's draw state (:mod:`repro.congest.runtime.rng`): an
        :class:`~repro.congest.runtime.rng.ExactRng` over the inputs by
        default (byte-identical per-vertex ``random.Random`` streams),
        or the vectorized Philox state when the run opted into
        ``rng="vectorized"``.  Algorithms branch on ``ctx.rng.vectorized``.
    round_number, inbox, halted:
        Current round (1-based), this round's :class:`ColumnarInbox`, and
        the halt mask (read it freely; mutate only via :meth:`halt`).

    >>> import networkx as nx
    >>> from repro.congest.runtime.compile import compile_topology
    >>> topology = compile_topology(nx.path_graph(3))
    >>> ctx = ColumnarContext(
    ...     topology, topology.columnar_plane(),
    ...     ColumnarSpec(("level", np.int64)), [None] * 3)
    >>> ctx.index_of(2)
    2
    >>> ctx.halt(np.array([0, 2]))
    >>> ctx.halted.tolist()
    [True, False, True]
    """

    __slots__ = (
        "n", "vertices", "indptr", "indices", "degrees", "repr_rank",
        "inputs", "rng", "round_number", "inbox", "halted",
        "_index_of", "_index_dtype", "_spec", "_emissions", "_halted_count",
    )

    def __init__(self, topology, plane, spec, inputs_list, rng=None) -> None:
        self.n = topology.n
        self.vertices = topology.vertices
        self.indptr = topology.indptr
        self.indices = topology.indices
        self._index_dtype = topology.indices.dtype
        self.degrees = plane.degrees
        self.repr_rank = plane.repr_rank
        self.inputs = inputs_list
        self.rng = ExactRng(inputs_list) if rng is None else rng
        self.round_number = 0
        self.inbox = ColumnarInbox.empty(topology.n, spec)
        self.halted = np.zeros(topology.n, dtype=bool)
        self._index_of = topology.index_of
        self._spec = spec
        self._emissions: list = []
        self._halted_count = 0

    def index_of(self, vertex: Any) -> int:
        """Dense index of a vertex id."""
        return self._index_of[vertex]

    def halt(self, which) -> None:
        """Halt vertices (bool mask over ``n``, or dense indices).  The
        run ends when every vertex has halted.  Transitions are one-way."""
        which = np.asarray(which)
        if which.dtype == np.bool_:
            self.halted |= which
        else:
            self.halted[which] = True
        self._halted_count = int(np.count_nonzero(self.halted))

    def reduce_neighbors(self, op, values=None, where=None, empty=None):
        """Segmented reduction over this round's inbox — see
        :meth:`ColumnarInbox.reduce`."""
        return self.inbox.reduce(op, values, where=where, empty=empty)

    def gather_var(self, name, where=None):
        """Per-vertex concatenation of this round's received var-field
        sequences — see :meth:`ColumnarInbox.gather_var`."""
        return self.inbox.gather_var(name, where=where)

    # -- emission ------------------------------------------------------------
    def emit_columns(self, senders, receivers=None, **fields) -> None:
        """Queue this round's outgoing messages as columns.

        ``senders`` is a bool mask over all vertices or an array of dense
        indices.  With ``receivers=None`` every sender broadcasts one
        message to each of its neighbours (field values are per *sender*
        and fan out over the CSR segment); with ``receivers`` given (an
        array aligned with ``senders``) each (sender, receiver) pair is
        one unicast message and field values are per *message*.  Fields
        must match the algorithm's :class:`ColumnarSpec` exactly; values
        are range-checked against the declared dtypes here — silent
        overflow truncation is rejected at emit time.  Specs with
        variable-width fields must emit through :meth:`emit_var`.

        >>> import networkx as nx
        >>> from repro.congest.runtime.compile import compile_topology
        >>> topology = compile_topology(nx.path_graph(3))
        >>> ctx = ColumnarContext(
        ...     topology, topology.columnar_plane(),
        ...     ColumnarSpec(("level", np.int64)), [None] * 3)
        >>> ctx.emit_columns(np.array([1]), level=7)  # 1 broadcasts 7
        >>> len(ctx._emissions)
        1
        """
        if self._spec.var_names:
            raise ValueError(
                "spec declares variable-width fields "
                f"{list(self._spec.var_names)}; emit with ctx.emit_var"
            )
        self._emit(senders, receivers, fields)

    def emit_var(self, senders, receivers=None, **fields) -> None:
        """Queue outgoing messages carrying variable-width fields.

        Same sender/receiver semantics as :meth:`emit_columns`.  Each
        var field's value is either ``(pool, lengths)`` — a 2-tuple of
        *numpy arrays*: a flat int64 value pool plus one sequence length
        per sender/message — or a plain list of per-row sequences
        (converted to that form; a tuple of non-array sequences counts
        as per-row sequences, not as a pool).  On a
        broadcast, a sender's sequence fans out to each of its
        neighbours; fixed fields, if the spec declares any, are passed
        alongside exactly as in :meth:`emit_columns`.

        >>> import networkx as nx
        >>> from repro.congest.runtime.compile import compile_topology
        >>> topology = compile_topology(nx.path_graph(3))
        >>> ctx = ColumnarContext(
        ...     topology, topology.columnar_plane(),
        ...     ColumnarSpec(VarColumn("tokens")), [None] * 3)
        >>> ctx.emit_var(  # vertex 1 unicasts (9, 9) to 0 and () to 2
        ...     np.array([1, 1]), np.array([0, 2]), tokens=[[9, 9], []])
        >>> len(ctx._emissions)
        1
        """
        self._emit(senders, receivers, fields)

    def _emit(self, senders, receivers, fields) -> None:
        spec = self._spec
        senders = np.asarray(senders)
        if senders.dtype == np.bool_:
            if senders.shape != (self.n,):
                raise ValueError(
                    "boolean sender mask must cover all vertices"
                )
            senders = np.flatnonzero(senders)
        else:
            senders = senders.astype(np.int64, copy=False)
            if senders.size and (
                int(senders.min()) < 0 or int(senders.max()) >= self.n
            ):
                raise ValueError("sender index out of range")
        # Dtype propagation: emission index columns adopt the topology's
        # (possibly int32-narrowed) index dtype, so inboxes, receiver
        # sorts, and segmented reductions downstream stay narrow instead
        # of silently upcasting.  Validation above ran in int64, so the
        # cast is range-safe.
        senders = senders.astype(self._index_dtype, copy=False)
        if senders.size and bool(self.halted[senders].any()):
            raise ValueError("columnar emission from a halted vertex")
        if receivers is not None:
            receivers = np.asarray(receivers).astype(np.int64, copy=False)
            if receivers.shape != senders.shape:
                raise ValueError(
                    "receivers must align one-to-one with senders"
                )
            if receivers.size and (
                int(receivers.min()) < 0 or int(receivers.max()) >= self.n
            ):
                raise ValueError("receiver index out of range")
            receivers = receivers.astype(self._index_dtype, copy=False)
        declared = set(spec.names) | set(spec.var_names)
        unknown = set(fields) - declared
        missing = declared - set(fields)
        if unknown or missing:
            raise ValueError(
                f"emission fields {sorted(fields)} do not match spec "
                f"fields {sorted(declared)}"
            )
        count = len(senders)
        if count == 0:
            return
        columns = {}
        for name in spec.names:
            value = np.asarray(fields[name])
            if value.dtype.kind not in "iub":
                raise TypeError(
                    f"columnar field {name!r}: values must be integers or "
                    f"bools, got dtype {value.dtype}"
                )
            value = value.astype(np.int64, copy=False)
            if value.ndim == 0:
                value = np.full(count, int(value), dtype=np.int64)
            elif len(value) != count:
                raise ValueError(
                    f"columnar field {name!r}: expected {count} values, "
                    f"got {len(value)}"
                )
            spec.check_range(name, value)
            columns[name] = value
        var_data = {}
        for name in spec.var_names:
            value = fields[name]
            # The (pool, lengths) fast-path form must be a pair of numpy
            # arrays: a 2-tuple of plain sequences is two per-row
            # sequences (a coincidentally balanced one would otherwise
            # be silently misread as pool form).
            if (
                isinstance(value, tuple) and len(value) == 2
                and isinstance(value[0], np.ndarray)
                and isinstance(value[1], np.ndarray)
            ):
                pool, lengths = value
            else:
                rows = [np.asarray(row, dtype=np.int64).ravel()
                        for row in value]
                lengths = np.array([len(row) for row in rows],
                                   dtype=np.int64)
                pool = (np.concatenate(rows) if rows
                        else np.empty(0, dtype=np.int64))
            pool = np.asarray(pool)
            if pool.dtype.kind not in "iub":
                raise TypeError(
                    f"columnar var field {name!r}: values must be "
                    f"integers or bools, got dtype {pool.dtype}"
                )
            pool = pool.astype(np.int64, copy=False).ravel()
            lengths = np.asarray(lengths).astype(np.int64, copy=False)
            if len(lengths) != count:
                raise ValueError(
                    f"columnar var field {name!r}: expected {count} "
                    f"sequence lengths, got {len(lengths)}"
                )
            if lengths.size and int(lengths.min()) < 0:
                raise ValueError(
                    f"columnar var field {name!r}: negative sequence "
                    f"length"
                )
            if int(lengths.sum()) != len(pool):
                raise ValueError(
                    f"columnar var field {name!r}: pool holds "
                    f"{len(pool)} values but lengths sum to "
                    f"{int(lengths.sum())}"
                )
            var_data[name] = (pool, lengths)
        self._emissions.append((senders, receivers, columns, var_data))


class ColumnarAlgorithm:
    """Base class for round-vectorized algorithms on the columnar plane.

    Subclasses set ``spec`` (a :class:`ColumnarSpec`) and implement:

    * :meth:`setup` — allocate per-vertex state arrays on ``self``;
    * :meth:`on_round` — one call per round for the *whole graph*:
      consume ``ctx.inbox`` (via :meth:`ColumnarContext.reduce_neighbors`),
      update state, emit via :meth:`ColumnarContext.emit_columns`, and
      :meth:`ColumnarContext.halt` finished vertices;
    * :meth:`outputs` — the per-vertex outputs, aligned to dense indices.

    Like the object plane, configured subclasses override :meth:`spawn`
    so each run gets a fresh instance.  ``Network.run`` resolves the
    plane through the runtime registry via :attr:`plane_kind`, so a
    columnar algorithm drops into every existing harness (``run_many``
    sweeps, the CLI, benchmarks) unchanged.

    Plane capabilities
    ------------------
    ``plane_kind = "columnar"`` is what the runtime registry
    (:mod:`repro.congest.runtime.planes`) keys on — no ``isinstance``
    dispatch anywhere.  ``grid_safe`` opts a subclass into **trial-major
    grid batching** (:mod:`repro.congest.runtime.batch`): the whole
    program then also runs as one block-diagonal ``(T·n)``-row grid over
    T independent trials.  A subclass is grid-safe when its ``setup`` /
    ``on_round`` / ``outputs`` touch vertices only through the context's
    arrays (``ctx.inputs``, ``ctx.degrees``, ``ctx.repr_rank``, masks
    over ``ctx.n``, fancy-indexable ``ctx.index_of`` results) — i.e. it
    never assumes a vertex id resolves to exactly one dense row — AND
    every emission is gated on ``~ctx.halted`` (e.g. via a
    ``stepped = ~ctx.halted`` mask, as all ports here do), never on a
    private liveness mask alone.  ``rng_modes`` declares which draw
    disciplines the subclass implements: every algorithm supports the
    byte-identity default ``"exact"``; randomized ports that also read
    vectorized Philox columns (via ``ctx.rng.randrange_rows`` /
    ``ctx.rng.uniform_rows``) add ``"vectorized"`` — see
    :mod:`repro.congest.runtime.rng`.  The second condition is what lets the
    grid executor *freeze* a trial that exceeded its per-trial round cap
    by halting its rows: an algorithm that keeps emitting from
    externally-halted rows would raise the halted-sender error instead
    of the serial run's round-cap error.  It is *not* grid-safe when
    per-vertex inputs embed vertex ids that are resolved row-by-row
    (see ``ColumnarConvergecastSum``).
    """

    spec: ColumnarSpec
    plane_kind = "columnar"
    grid_safe = False
    rng_modes = ("exact",)

    def spawn(self) -> "ColumnarAlgorithm":
        return type(self)()

    def setup(self, ctx: ColumnarContext) -> None:
        """Allocate state.  Called once, before round 1."""

    def on_round(self, ctx: ColumnarContext) -> None:
        raise NotImplementedError

    def outputs(self, ctx: ColumnarContext) -> list:
        return [None] * ctx.n


class CompiledDeliveryPlane:
    """Columnar-plane arrays compiled lazily per topology (cached on the
    :class:`~repro.congest.engine.CompiledTopology`, so they share its
    per-graph memoization and invalidation)."""

    __slots__ = (
        "degrees", "edge_senders", "edge_keys", "repr_rank",
        "neighbor_index_sets",
    )

    def __init__(self, topology) -> None:
        n = topology.n
        self.degrees = (topology.indptr[1:] - topology.indptr[:-1]).astype(
            np.int64
        )
        self.edge_senders = np.repeat(
            np.arange(n, dtype=np.int64), self.degrees
        )
        # Sorted (sender * n + receiver) keys: vectorized adjacency checks
        # for unicast emissions are one binary search over this table.
        self.edge_keys = np.sort(self.edge_senders * n + topology.indices)
        order = sorted(range(n), key=lambda i: repr(topology.vertices[i]))
        rank = np.empty(n, dtype=np.int64)
        rank[np.asarray(order, dtype=np.int64)] = np.arange(n, dtype=np.int64)
        self.repr_rank = rank
        # Reference-mode adjacency sets over dense indices.
        self.neighbor_index_sets = [
            frozenset(t) for t in topology.neighbor_index_tuples
        ]


# ---------------------------------------------------------------------------
# Executors
# ---------------------------------------------------------------------------
def _raise_bandwidth(topology, sender, receiver, bits, bandwidth_bits):
    from repro.congest.network import BandwidthExceededError

    if not isinstance(bandwidth_bits, int):
        # Per-vertex budget table (grid execution over uneven blocks):
        # the error names the offending sender's own trial budget.
        bandwidth_bits = int(bandwidth_bits[sender])
    raise BandwidthExceededError(
        f"message of {bits} bits from {topology.vertices[sender]!r} to "
        f"{topology.vertices[receiver]!r} exceeds CONGEST bandwidth "
        f"{bandwidth_bits} bits"
    )


def _deliver_fast(topology, plane, spec, groups, limit, bandwidth_bits, acc,
                  fault_state=None, round_number=0):
    """Validate, account, and deliver one round's emissions — pure array
    ops, zero per-message Python objects.  On a validation failure the
    messages validated before the offending one are accounted (matching
    the reference executor's partial-round counting) before the raise.

    ``acc`` is an accountant (``add(senders, bits)`` — e.g.
    :class:`~repro.congest.metrics.ScalarAccountant`, or the per-trial
    grid accountant).  ``limit``/``bandwidth_bits`` are scalars for a
    single run, or per-*vertex* int64 tables for grid execution (each
    trial block carries its own budget).

    ``fault_state`` optionally detours the round's validated traffic
    through :meth:`~repro.congest.runtime.faults.FaultState.columnar_step`
    (drop/dup/delay as mask/repeat/delay-bucket array ops, merged with
    matured delayed batches) between accounting and the receiver sort —
    sent messages are counted, delivery is what the adversary permits.
    """
    n = topology.n
    names = spec.names
    var_names = spec.var_names
    scalar_limit = isinstance(limit, int)
    senders_parts: list = []
    receivers_parts: list = []
    column_parts: dict = {name: [] for name in names}
    var_pool_parts: dict = {name: [] for name in var_names}
    var_len_parts: dict = {name: [] for name in var_names}
    indptr = topology.indptr
    indices = topology.indices
    degrees = plane.degrees
    for senders, receivers, columns, var_data in groups:
        if receivers is None:
            # Broadcast: fan each sender's field values over its CSR
            # neighbour segment.  Adjacency holds by construction.
            deg = degrees[senders]
            total = int(deg.sum())
            if total == 0:
                continue
            seg_ids = np.repeat(
                np.arange(len(senders), dtype=np.int64), deg
            )
            offsets = np.arange(total, dtype=np.int64) - np.repeat(
                _cumsum0(deg)[:-1], deg
            )
            message_receivers = indices[indptr[senders][seg_ids] + offsets]
            message_senders = senders[seg_ids]
            message_columns = {
                name: np.repeat(columns[name], deg) for name in names
            }
            # Var fields fan out as ragged segments: repeat each
            # sender's (start, length) per neighbour, then one CSR
            # scatter materializes every copy's values.
            message_var = {}
            per_sender_var = None
            if var_names:
                per_sender_var = {}
                for name in var_names:
                    pool, lengths = var_data[name]
                    starts = _cumsum0(lengths)
                    msg_lengths = np.repeat(lengths, deg)
                    msg_starts = np.repeat(starts[:-1], deg)
                    message_var[name] = (
                        _ragged_gather(pool, msg_starts, msg_lengths),
                        msg_lengths,
                    )
                    per_sender_var[name] = (pool, starts)
            # All of a sender's copies share one size: size per sender,
            # then fan out (deg× less bit-length work than per message).
            bits = np.repeat(spec.bits_of(columns, per_sender_var), deg)
            cap = limit if scalar_limit else limit[message_senders]
            over = bits > cap
            if over.any():
                bad = int(np.argmax(over))
                if bad:
                    acc.add(message_senders[:bad], bits[:bad])
                _raise_bandwidth(
                    topology, int(message_senders[bad]),
                    int(message_receivers[bad]), int(bits[bad]),
                    bandwidth_bits,
                )
        else:
            # Unicast: one binary search validates every (sender,
            # receiver) pair against the sorted edge-key table.
            message_senders = senders
            message_receivers = receivers
            message_columns = columns
            message_var = {name: var_data[name] for name in var_names}
            per_message_var = (
                {
                    name: (pool, _cumsum0(lengths))
                    for name, (pool, lengths) in message_var.items()
                }
                if var_names else None
            )
            bits = spec.bits_of(message_columns, per_message_var)
            # Edge keys are always built in int64: with a narrowed
            # topology the indices are int32 and ``sender * n`` would
            # overflow under NEP 50 instead of promoting.
            keys = (
                message_senders.astype(np.int64, copy=False) * n
                + message_receivers
            )
            if plane.edge_keys.size:
                positions = np.searchsorted(plane.edge_keys, keys)
                positions = np.minimum(positions, plane.edge_keys.size - 1)
                ok = plane.edge_keys[positions] == keys
            else:
                ok = np.zeros(len(keys), dtype=bool)
            cap = limit if scalar_limit else limit[message_senders]
            over = bits > cap
            bad_adjacency = int(np.argmin(ok)) if not ok.all() else len(keys)
            bad_bandwidth = int(np.argmax(over)) if over.any() else len(keys)
            if bad_adjacency <= bad_bandwidth and bad_adjacency < len(keys):
                # Per-message validation order is adjacency first: count
                # the fully validated prefix, then raise as the object
                # plane would.
                if bad_adjacency:
                    acc.add(
                        message_senders[:bad_adjacency],
                        bits[:bad_adjacency],
                    )
                raise ValueError(
                    f"node {topology.vertices[int(message_senders[bad_adjacency])]!r} "
                    f"sent to non-neighbor "
                    f"{topology.vertices[int(message_receivers[bad_adjacency])]!r}"
                )
            if bad_bandwidth < len(keys):
                if bad_bandwidth:
                    acc.add(
                        message_senders[:bad_bandwidth],
                        bits[:bad_bandwidth],
                    )
                _raise_bandwidth(
                    topology, int(message_senders[bad_bandwidth]),
                    int(message_receivers[bad_bandwidth]),
                    int(bits[bad_bandwidth]), bandwidth_bits,
                )
        acc.add(message_senders, bits)
        senders_parts.append(message_senders)
        receivers_parts.append(message_receivers)
        for name in names:
            column_parts[name].append(message_columns[name])
        for name in var_names:
            pool, lengths = message_var[name]
            var_pool_parts[name].append(pool)
            var_len_parts[name].append(lengths)
    if not senders_parts and fault_state is None:
        return ColumnarInbox.empty(n, spec)
    if senders_parts:
        all_senders = (
            senders_parts[0] if len(senders_parts) == 1
            else np.concatenate(senders_parts)
        )
        all_receivers = (
            receivers_parts[0] if len(receivers_parts) == 1
            else np.concatenate(receivers_parts)
        )
        merged_columns = {}
        for name in names:
            parts = column_parts[name]
            merged_columns[name] = (
                parts[0] if len(parts) == 1 else np.concatenate(parts)
            )
        merged_var = {}
        for name in var_names:
            pools = var_pool_parts[name]
            lens = var_len_parts[name]
            merged_var[name] = (
                pools[0] if len(pools) == 1 else np.concatenate(pools),
                lens[0] if len(lens) == 1 else np.concatenate(lens),
            )
    else:
        # No fresh emissions this round, but a fault plan may still owe
        # matured delayed copies — feed empty fresh arrays through the
        # fate pass instead of early-returning an empty inbox.
        all_senders = np.empty(0, dtype=np.int64)
        all_receivers = np.empty(0, dtype=np.int64)
        merged_columns = {name: np.empty(0, dtype=np.int64) for name in names}
        merged_var = {
            name: (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
            for name in var_names
        }
    if fault_state is not None:
        all_senders, all_receivers, merged_columns, merged_var = (
            fault_state.columnar_step(
                round_number, all_senders, all_receivers,
                merged_columns, merged_var,
            )
        )
        if not len(all_senders):
            return ColumnarInbox.empty(n, spec)
    # Stable sort by receiver: CSR-segmented inbox, emission order within
    # each receiver (the ordering contract of the module docstring).
    # Receivers are < n, so small graphs sort 16-bit keys — numpy's
    # stable sort is an O(M) radix sort for ≤16-bit ints but a
    # comparison sort for wider types (~9× slower at these sizes).
    # Grids past 2**16 rows (trial-major batches) keep the radix cost by
    # LSD-composing two stable 16-bit passes.
    if n <= 0xFFFF:
        order = np.argsort(all_receivers.astype(np.uint16), kind="stable")
    elif n <= 0xFFFFFFFF:
        order = np.argsort(
            (all_receivers & 0xFFFF).astype(np.uint16), kind="stable"
        )
        high = (all_receivers >> 16)[order].astype(np.uint16)
        order = order[np.argsort(high, kind="stable")]
    else:  # pragma: no cover - graphs beyond 2**32 vertices
        order = np.argsort(all_receivers, kind="stable")
    inbox_indptr = _cumsum0(np.bincount(all_receivers, minlength=n))
    inbox_columns = {}
    for (name, dtype) in spec.fields:
        merged = merged_columns[name]
        inbox_columns[name] = merged[order].astype(dtype, copy=False)
    var_pools = {}
    var_indptrs = {}
    for name in var_names:
        pool, lengths = merged_var[name]
        # Permute the ragged segments with the receiver sort: the sorted
        # message order's (start, length) pairs drive one CSR scatter.
        sorted_lengths = lengths[order]
        starts = _cumsum0(lengths)[:-1]
        var_pools[name] = _ragged_gather(pool, starts[order], sorted_lengths)
        var_indptrs[name] = _cumsum0(sorted_lengths)
    return ColumnarInbox(
        n, all_senders[order], inbox_indptr, inbox_columns,
        var_pools, var_indptrs,
    )


def _deliver_reference(topology, plane, spec, groups, limit, bandwidth_bits,
                       metrics, fault_state=None, round_number=0):
    """The dict plane for columnar programs: every emission expanded to a
    per-message :class:`Message` (payload = field tuple / bare value),
    validated, sized via ``bits_for_payload``, and counted one message at
    a time — the executable spec the fast path is tested against.

    With a ``fault_state``, validated messages detour through
    :meth:`~repro.congest.runtime.faults.FaultState.object_round` (same
    per-message fate decisions as the fast path's ``columnar_step``)
    before bucketing, so the reference plane reproduces the fast plane's
    faulty deliveries message for message."""
    from repro.congest.network import BandwidthExceededError

    n = topology.n
    names = spec.names
    var_names = spec.var_names
    vertices = topology.vertices
    neighbor_sets = plane.neighbor_index_sets
    buckets: list = [None] * n
    fresh: list | None = [] if fault_state is not None else None
    for senders, receivers, columns, var_data in groups:
        sender_list = senders.tolist()
        value_lists = [columns[name].tolist() for name in names]
        var_lists = {}
        for name in var_names:
            pool, lengths = var_data[name]
            values = pool.tolist()
            offsets = _cumsum0(lengths).tolist()
            var_lists[name] = [
                tuple(values[offsets[k]:offsets[k + 1]])
                for k in range(len(lengths))
            ]
        receiver_list = None if receivers is None else receivers.tolist()
        for k, s in enumerate(sender_list):
            row = tuple(values[k] for values in value_lists)
            var_row = {name: var_lists[name][k] for name in var_names}
            message = Message(spec.payload_of(row, var_row))
            targets = (
                topology.neighbor_index_tuples[s]
                if receiver_list is None else (receiver_list[k],)
            )
            for r in targets:
                if receiver_list is not None and r not in neighbor_sets[s]:
                    raise ValueError(
                        f"node {vertices[s]!r} sent to non-neighbor "
                        f"{vertices[r]!r}"
                    )
                bits = message.bit_size
                if bits > limit:
                    raise BandwidthExceededError(
                        f"message of {bits} bits from {vertices[s]!r} to "
                        f"{vertices[r]!r} exceeds CONGEST bandwidth "
                        f"{bandwidth_bits} bits"
                    )
                metrics.record_message(bits)
                metrics.record_edge_load(bits)
                if fresh is not None:
                    fresh.append((s, r, (row, var_row)))
                    continue
                bucket = buckets[r]
                if bucket is None:
                    bucket = buckets[r] = []
                bucket.append((s, row, var_row))
    if fault_state is not None:
        for s, r, payload in fault_state.object_round(round_number, fresh):
            row, var_row = payload
            bucket = buckets[r]
            if bucket is None:
                bucket = buckets[r] = []
            bucket.append((s, row, var_row))
    sender_out: list = []
    value_out: list = [[] for _ in names]
    var_out: dict = {name: ([], [0]) for name in var_names}
    inbox_indptr = np.empty(n + 1, dtype=np.int64)
    inbox_indptr[0] = 0
    for r in range(n):
        bucket = buckets[r]
        if bucket:
            for s, row, var_row in bucket:
                sender_out.append(s)
                for j, value in enumerate(row):
                    value_out[j].append(value)
                for name in var_names:
                    pool, offsets = var_out[name]
                    pool.extend(var_row[name])
                    offsets.append(len(pool))
        inbox_indptr[r + 1] = len(sender_out)
    inbox_columns = {
        name: np.array(value_out[j], dtype=spec.dtypes[j])
        for j, name in enumerate(names)
    }
    var_pools = {
        name: np.array(var_out[name][0], dtype=np.int64)
        for name in var_names
    }
    var_indptrs = {
        name: np.array(var_out[name][1], dtype=np.int64)
        for name in var_names
    }
    return ColumnarInbox(
        n, np.array(sender_out, dtype=np.int64), inbox_indptr, inbox_columns,
        var_pools, var_indptrs,
    )


def execute_columnar(
    topology,
    algorithm: ColumnarAlgorithm,
    *,
    model: str,
    bandwidth_bits: int,
    metrics,
    max_rounds: int = 10_000,
    inputs: Mapping[Any, Any] | None = None,
    reference: bool = False,
    faults=None,
    rng=None,
) -> dict[Any, Any]:
    """Run a :class:`ColumnarAlgorithm` over a compiled topology.

    Same observable contract as the object-plane executor: outputs keyed
    in ``graph.nodes`` order, ``NetworkMetrics`` counters identical to
    sending the equivalent ``Message`` objects, the same exception types
    and texts on non-neighbour sends / bandwidth violations /
    ``max_rounds`` exhaustion.  ``reference=True`` selects the
    per-message dict plane (see :func:`_deliver_reference`).

    ``faults`` optionally takes a
    :class:`~repro.congest.runtime.faults.FaultPlan`: crashes are drawn
    at the top of each round (a crashed vertex halts before stepping)
    and validated emissions pass through the plan's drop/dup/delay fate
    pass before the receiver sort.  A zero plan is byte-identical to
    ``faults=None``.

    ``rng`` optionally takes an
    :class:`~repro.congest.runtime.rng.RngPlan` (or a mode string):
    ``"exact"`` — the default — keeps the per-vertex ``random.Random``
    streams and is byte-identical to ``rng=None``; ``"vectorized"``
    hands the algorithm counter-based Philox column draws instead,
    which requires the algorithm to declare ``"vectorized"`` in its
    ``rng_modes``.  The draw state is independent of the delivery
    plane, so vectorized runs agree bit-for-bit between
    ``reference=True`` and the fast path.
    """
    spec = getattr(algorithm, "spec", None)
    if not isinstance(spec, ColumnarSpec):
        raise TypeError(
            f"{type(algorithm).__name__}.spec must be a ColumnarSpec"
        )
    plane = topology.columnar_plane()
    instance = algorithm.spawn()
    vertices = topology.vertices
    inputs_list = (
        [None] * topology.n if inputs is None
        else [inputs.get(v) for v in vertices]
    )
    rng_plan = RngPlan.coerce(rng)
    if rng_plan.vectorized and not supports_vectorized(algorithm):
        raise ValueError(
            f"{type(algorithm).__name__} does not support rng mode "
            f"'vectorized': its rng_modes are "
            f"{tuple(getattr(algorithm, 'rng_modes', ('exact',)))}"
        )
    ctx = ColumnarContext(
        topology, plane, spec, inputs_list,
        rng_state_for(rng_plan, inputs_list),
    )
    instance.setup(ctx)
    limit = bandwidth_bits if model == "congest" else (1 << 62)
    acc = ScalarAccountant()  # deferred fast-path counters
    if faults is None:
        fault_state = None
    else:
        from repro.congest.runtime.faults import FaultState

        fault_state = FaultState.for_single(faults, topology)

    def done() -> bool:
        return ctx._halted_count >= ctx.n

    def advance(round_number: int) -> None:
        ctx.round_number = round_number
        if fault_state is not None:
            # Crash-stop draw before the round's compute: a crashed
            # vertex neither steps nor emits from this round on.
            rows = fault_state.crash_step(round_number, ~ctx.halted)
            if rows.size:
                ctx.halt(rows)
        ctx._emissions = []
        instance.on_round(ctx)
        groups = ctx._emissions
        if reference:
            ctx.inbox = _deliver_reference(
                topology, plane, spec, groups, limit, bandwidth_bits,
                metrics, fault_state, round_number,
            )
        else:
            ctx.inbox = _deliver_fast(
                topology, plane, spec, groups, limit, bandwidth_bits, acc,
                fault_state, round_number,
            )

    def flush() -> None:
        acc.flush(metrics)
        if fault_state is not None:
            fault_state.flush(metrics)

    run_rounds(
        metrics=metrics, max_rounds=max_rounds,
        done=done, advance=advance, flush=flush,
    )
    results = instance.outputs(ctx)
    return {vertices[i]: results[i] for i in range(ctx.n)}
