"""Classic distributed algorithms run through the simulator.

These are the standard CONGEST/LOCAL baselines the paper's round counts
are implicitly compared against, implemented as genuine message-passing
node algorithms so their round counts are *measured*:

* :func:`luby_mis` — Luby's randomized maximal independent set,
  O(log n) rounds w.h.p.  (A maximal IS is a (1/Δ)-ish approximation on
  planar graphs — the fast-but-crude baseline for Corollary 6.5.)
* :func:`distributed_greedy_matching` — randomized maximal matching by
  local proposals, O(log n) rounds w.h.p. (the ½-approximation baseline
  for Corollary 6.4).
* :func:`delta_plus_one_coloring` — randomized (Δ+1)-colouring by trial
  colours, O(log n) rounds w.h.p. (used by tests as another genuinely
  distributed primitive exercising the simulator).

Each takes an explicit ``seed``: the *paper's* algorithms are
deterministic; these baselines are the randomized competition.

Columnar ports
--------------
:class:`ColumnarLubyMIS` and :class:`ColumnarTrialColoring` are
round-vectorized ports of the MIS and colouring baselines onto the
columnar delivery plane (:mod:`repro.congest.columnar`).  They replicate
the object-plane algorithms *exactly* — same per-vertex RNG streams,
same transitions, same payload values — so outputs **and**
``NetworkMetrics`` counters are byte-identical to
:class:`LubyMISAlgorithm` / :class:`TrialColoringAlgorithm`
(``tests/test_columnar.py`` asserts this differentially); what changes
is the cost model: priority comparison and conflict detection are single
segmented reductions instead of per-vertex Python inbox loops.  The
per-vertex RNG draws remain Python (O(active) per phase — matching the
originals' streams requires ``random.Random``), which is off the
per-edge hot path.  Tie-breaks use ``repr``-rank, so vertex reprs must
be distinct (true for every graph family in this repository).
``luby_mis``/``delta_plus_one_coloring`` take ``plane="columnar"`` to
run the ported implementations through the same verified wrappers.
"""

from __future__ import annotations

import random
from typing import Any, Hashable, Mapping

import networkx as nx
import numpy as np

from repro.congest.columnar import ColumnarAlgorithm, ColumnarContext
from repro.congest.message import Broadcast, ColumnarSpec, Message
from repro.congest.metrics import NetworkMetrics
from repro.congest.network import Network, NodeAlgorithm, NodeContext
from repro.congest.runtime import variant_for_plane


# Constant-payload notifications shared by every vertex and every run:
# messages are immutable, so one instance (sized once, ever) suffices.
_MIS_JOINED = Message((1, 0))
_MATCH_PROPOSAL = Message(0)
_MATCH_TAKEN = Message(2)


class LubyMISAlgorithm(NodeAlgorithm):
    """One node of Luby's algorithm.

    Per phase (2 rounds): draw a random priority, exchange with active
    neighbours; local maxima join the IS and notify; neighbours of
    IS vertices retire.  ``input`` is the per-vertex RNG seed.
    """

    _DRAW, _RESOLVE = 0, 1

    def __init__(self, horizon: int) -> None:
        super().__init__()
        self.horizon = horizon
        self.rng: random.Random | None = None
        self.active = True
        self.in_set = False
        self.priority = 0
        self.phase = self._DRAW
        self.active_neighbors: set = set()

    def spawn(self) -> "LubyMISAlgorithm":
        return LubyMISAlgorithm(self.horizon)

    def initialize(self, ctx: NodeContext) -> None:
        self.rng = random.Random(self.input)
        self.active_neighbors = set(ctx.neighbors)
        self._node_repr = repr(ctx.node)

    def on_round(self, ctx: NodeContext, inbox: Mapping[Any, Message]):
        if not self.active:
            self.halt()
            return {}
        if ctx.round_number > self.horizon:
            raise RuntimeError("Luby MIS exceeded horizon")
        if self.phase == self._DRAW:
            # Resolve the previous phase's notifications first.
            for sender, message in inbox.items():
                kind, _value = message.payload
                if kind == 1:  # neighbour joined the IS
                    self.active = False
                elif kind == 2:  # neighbour retired
                    self.active_neighbors.discard(sender)
            if not self.active:
                self.halt()
                return {}
            if not self.active_neighbors:
                self.in_set = True
                self.active = False
                self.halt()
                return {}
            self.priority = self.rng.randrange(1 << 30)
            self.phase = self._RESOLVE
            # One shared immutable Message through the broadcast plane:
            # payload validated and sized once, not once per neighbour.
            # active_neighbors only shrinks, so equal size means the
            # subset is all neighbours — the engine's fastest path.
            draw = Message((0, self.priority))
            to = self.active_neighbors
            return Broadcast(draw, None if len(to) == ctx.degree else to)
        # RESOLVE: compare priorities.  Ties on the 30-bit priority are
        # broken by vertex repr, but the repr is only materialized on an
        # actual tie — same outcome as comparing (value, repr) tuples.
        wins = True
        my_priority = self.priority
        for sender, message in inbox.items():
            kind, value = message.payload
            if kind == 0 and sender in self.active_neighbors:
                if value > my_priority or (
                    value == my_priority and repr(sender) > self._node_repr
                ):
                    wins = False
                    break
        self.phase = self._DRAW
        if wins:
            self.in_set = True
            self.active = False
            # Notify neighbours, then stop next round.
            to = self.active_neighbors
            out = Broadcast(_MIS_JOINED, None if len(to) == ctx.degree else to)
            self.halt()
            return out
        return {}

    def output(self):
        return self.in_set


class ColumnarLubyMIS(ColumnarAlgorithm):
    """Luby's MIS as a round-vectorized columnar program.

    Exact port of :class:`LubyMISAlgorithm` (same RNG streams, same
    2-round DRAW/RESOLVE lockstep, same ``(kind, value)`` payloads), with
    the per-edge work — priority comparison against every active
    neighbour, join detection — as segmented reductions.  Priorities and
    ``repr``-rank pack into one 62-bit key, so "some neighbour beats me"
    is a single segmented ``max``.

    Under ``rng="vectorized"`` the per-round priority draw becomes one
    Philox column fill (``ctx.rng.randrange_rows``) instead of a Python
    loop over per-vertex Mersenne streams — deterministic and
    plane-independent, but a different (equally uniform) stream.
    """

    spec = ColumnarSpec(("kind", np.uint8), ("value", np.uint32))
    # Vertex state lives only in dense arrays (inputs/ranks/masks), so T
    # trials run as one block-diagonal grid (runtime.batch.run_many).
    grid_safe = True
    rng_modes = ("exact", "vectorized")

    _DRAW, _RESOLVE = 0, 1

    def __init__(self, horizon: int) -> None:
        self.horizon = horizon

    def spawn(self) -> "ColumnarLubyMIS":
        return ColumnarLubyMIS(self.horizon)

    def setup(self, ctx: ColumnarContext) -> None:
        n = ctx.n
        self.active = np.ones(n, dtype=bool)
        self.in_set = np.zeros(n, dtype=bool)
        self.priority = np.zeros(n, dtype=np.int64)
        self.rank = ctx.repr_rank

    def on_round(self, ctx: ColumnarContext) -> None:
        if ctx.round_number > self.horizon:
            raise RuntimeError("Luby MIS exceeded horizon")
        stepped = ~ctx.halted
        if ctx.round_number % 2 == 1:  # DRAW (odd rounds, lockstep)
            # Resolve the previous phase's notifications: any kind-1
            # message means a neighbour joined the IS.
            kinds = ctx.inbox.column("kind")
            joined_neighbor = ctx.reduce_neighbors("any", kinds == 1)
            retire = stepped & self.active & joined_neighbor
            self.active &= ~retire
            # Isolated vertices have no one to beat: join immediately.
            isolated = stepped & self.active & (ctx.degrees == 0)
            self.in_set |= isolated
            self.active &= ~isolated
            ctx.halt(retire | isolated)
            survivors = np.flatnonzero(stepped & self.active)
            if survivors.size:
                self.priority[survivors] = ctx.rng.randrange_rows(
                    ctx.round_number, survivors, 1 << 30
                )
                ctx.emit_columns(
                    survivors, kind=0, value=self.priority[survivors]
                )
        else:  # RESOLVE: the inbox holds the draws of active neighbours.
            values = ctx.inbox.column("value").astype(np.int64)
            kinds = ctx.inbox.column("kind")
            keys = (values << 32) | self.rank[ctx.inbox.senders]
            best = ctx.reduce_neighbors(
                "max", keys, where=(kinds == 0), empty=np.int64(-1)
            )
            my_key = (self.priority << 32) | self.rank
            wins = stepped & self.active & (best < my_key)
            winners = np.flatnonzero(wins)
            if winners.size:
                self.in_set[winners] = True
                self.active[winners] = False
                ctx.emit_columns(winners, kind=1, value=0)
                ctx.halt(wins)

    def outputs(self, ctx: ColumnarContext) -> list:
        return [bool(flag) for flag in self.in_set]


# Plane capabilities declared once per wrapper: the runtime registry maps
# a requested plane name to the implementation family (never isinstance),
# so new planes extend these wrappers without touching them.
_MIS_VARIANTS = {"object": LubyMISAlgorithm, "columnar": ColumnarLubyMIS}


def luby_mis(
    graph: nx.Graph, seed: int = 0, model: str = "congest",
    plane: str = "dict",
) -> tuple[set, NetworkMetrics]:
    """Run Luby's MIS; returns (independent set, metrics).

    ``plane`` is a runtime registry name (``"columnar"`` runs the
    vectorized :class:`ColumnarLubyMIS` port — identical outputs and
    metrics; ``"dict"`` is the legacy alias of ``"broadcast"``).  The
    result is verified maximal and independent before returning.
    """
    n = graph.number_of_nodes()
    horizon = 20 * max(4, n.bit_length() ** 2)
    rng = random.Random(seed)
    inputs = {v: rng.randrange(1 << 30) for v in graph.nodes}
    net = Network(graph, model=model)
    algorithm = variant_for_plane(_MIS_VARIANTS, plane)(horizon)
    outputs = net.run(
        algorithm, max_rounds=horizon + 2, inputs=inputs, plane=plane
    )
    independent = {v for v, flag in outputs.items() if flag}
    for u, v in graph.edges:
        if u in independent and v in independent:
            raise AssertionError("Luby output not independent")
    for v in graph.nodes:
        if v not in independent and not any(
            u in independent for u in graph.neighbors(v)
        ):
            raise AssertionError("Luby output not maximal")
    return independent, net.metrics


class SelfHealingMIS(NodeAlgorithm):
    """Fault-aware Luby MIS: a bounded draw/resolve phase followed by a
    self-healing repair phase that wins the MIS guarantees back.

    Phase 1 (rounds ``1..luby_rounds``) runs the same DRAW/RESOLVE
    lockstep as :class:`LubyMISAlgorithm`, but decided vertices merely
    stop drawing instead of halting — they must stay alive for phase 2.
    Phase 2 (``repair_rounds`` report rounds plus one final absorb
    round) has every live vertex broadcast a ``(2, status)`` report with
    status ``1`` (in the set), ``2`` (out, covered by a live in-set
    neighbour) or ``0`` (out and uncovered).  Repairs are rank-ordered:
    an in-set vertex leaves when a smaller-``repr`` neighbour also
    reports in-set (independence), and an uncovered vertex joins when no
    neighbour reports in-set and it beats every *uncovered* reporter
    (maximality — covered neighbours never block a join, which is what
    makes the repair deadlock-free).  Crash faults only ever break
    maximality, so under pure crashes the repair phase deterministically
    restores a valid MIS over the live vertices; paired with the
    reliable-delivery wrapper (:mod:`repro.congest.runtime.recovery`) it
    also rides out drops, delays, and low-bit corruption.
    """

    def __init__(self, luby_rounds: int, repair_rounds: int) -> None:
        super().__init__()
        if luby_rounds < 2 or luby_rounds % 2:
            raise ValueError(
                f"luby_rounds must be a positive even number of rounds, "
                f"got {luby_rounds}"
            )
        if repair_rounds < 1:
            raise ValueError(f"repair_rounds must be >= 1, got {repair_rounds}")
        self.luby_rounds = luby_rounds
        self.repair_rounds = repair_rounds
        self.rng: random.Random | None = None
        self.active = True
        self.in_set = False
        self.covered = False
        self.priority = 0

    def spawn(self) -> "SelfHealingMIS":
        return SelfHealingMIS(self.luby_rounds, self.repair_rounds)

    def initialize(self, ctx: NodeContext) -> None:
        self.rng = random.Random(self.input)
        self._node_repr = repr(ctx.node)

    def on_round(self, ctx: NodeContext, inbox: Mapping[Any, Message]):
        r = ctx.round_number
        if r <= self.luby_rounds:
            if r % 2 == 1:  # DRAW (odd rounds, lockstep)
                for _sender, message in inbox.items():
                    if message.payload[0] == 1:  # neighbour joined the IS
                        self.covered = True
                        self.active = False
                if self.active and ctx.degree == 0:
                    self.in_set = True
                    self.active = False
                if not self.active:
                    return {}
                self.priority = self.rng.randrange(1 << 30)
                return ctx.broadcast(Message((0, self.priority)))
            # RESOLVE: all kind-0 draws come from still-active vertices.
            if not self.active:
                return {}
            wins = True
            my_priority = self.priority
            for sender, message in inbox.items():
                kind, value = message.payload
                if kind == 0 and (
                    value > my_priority
                    or (value == my_priority and repr(sender) > self._node_repr)
                ):
                    wins = False
                    break
            if wins:
                self.in_set = True
                self.active = False
                return ctx.broadcast(_MIS_JOINED)
            return {}
        # Phase 2: repair by rank-ordered report exchange.
        r0 = r - self.luby_rounds
        if r0 > 1:
            in_reprs = []
            uncovered_reprs = []
            for sender, message in inbox.items():
                kind, value = message.payload
                if kind != 2:
                    continue  # stale phase-1 traffic (delays) is ignored
                if value == 1:
                    in_reprs.append(repr(sender))
                elif value == 0:
                    uncovered_reprs.append(repr(sender))
            covered_now = bool(in_reprs)
            if self.in_set and covered_now and min(in_reprs) < self._node_repr:
                self.in_set = False  # independence: the smaller rank stays
            if not self.in_set and not covered_now:
                if not uncovered_reprs or self._node_repr < min(uncovered_reprs):
                    self.in_set = True  # maximality: local minimum joins
            self.covered = covered_now
        if r0 > self.repair_rounds:
            self.halt()
            return {}
        status = 1 if self.in_set else (2 if self.covered else 0)
        return ctx.broadcast(Message((2, status)))

    def output(self):
        return self.in_set


class ColumnarSelfHealingMIS(ColumnarAlgorithm):
    """:class:`SelfHealingMIS` as a round-vectorized columnar program.

    Exact port (same RNG streams, same payloads, same repair rules with
    ``repr``-rank in place of ``repr`` strings): phase-1 win detection is
    the packed-key segmented ``max`` of :class:`ColumnarLubyMIS`, and
    each repair round is two segmented ``min`` reductions over reporter
    ranks (smallest in-set reporter for the leave rule, smallest
    uncovered reporter for the join rule).
    """

    spec = ColumnarSpec(("kind", np.uint8), ("value", np.uint32))
    # State is dense arrays only and every emission is gated on the live
    # mask, so T trials batch as one block-diagonal grid.
    grid_safe = True
    rng_modes = ("exact", "vectorized")

    def __init__(self, luby_rounds: int, repair_rounds: int) -> None:
        if luby_rounds < 2 or luby_rounds % 2:
            raise ValueError(
                f"luby_rounds must be a positive even number of rounds, "
                f"got {luby_rounds}"
            )
        if repair_rounds < 1:
            raise ValueError(f"repair_rounds must be >= 1, got {repair_rounds}")
        self.luby_rounds = luby_rounds
        self.repair_rounds = repair_rounds

    def spawn(self) -> "ColumnarSelfHealingMIS":
        return ColumnarSelfHealingMIS(self.luby_rounds, self.repair_rounds)

    def setup(self, ctx: ColumnarContext) -> None:
        n = ctx.n
        self.active = np.ones(n, dtype=bool)
        self.in_set = np.zeros(n, dtype=bool)
        self.covered = np.zeros(n, dtype=bool)
        self.priority = np.zeros(n, dtype=np.int64)
        self.rank = ctx.repr_rank

    def on_round(self, ctx: ColumnarContext) -> None:
        stepped = ~ctx.halted
        r = ctx.round_number
        if r <= self.luby_rounds:
            kinds = ctx.inbox.column("kind")
            if r % 2 == 1:  # DRAW
                joined = ctx.reduce_neighbors("any", kinds == 1)
                got = stepped & joined
                self.covered |= got
                self.active &= ~got
                isolated = stepped & self.active & (ctx.degrees == 0)
                self.in_set |= isolated
                self.active &= ~isolated
                survivors = np.flatnonzero(stepped & self.active)
                if survivors.size:
                    self.priority[survivors] = ctx.rng.randrange_rows(
                        ctx.round_number, survivors, 1 << 30
                    )
                    ctx.emit_columns(
                        survivors, kind=0, value=self.priority[survivors]
                    )
            else:  # RESOLVE
                values = ctx.inbox.column("value").astype(np.int64)
                keys = (values << 32) | self.rank[ctx.inbox.senders]
                best = ctx.reduce_neighbors(
                    "max", keys, where=(kinds == 0), empty=np.int64(-1)
                )
                my_key = (self.priority << 32) | self.rank
                wins = stepped & self.active & (best < my_key)
                winners = np.flatnonzero(wins)
                if winners.size:
                    self.in_set[winners] = True
                    self.active[winners] = False
                    ctx.emit_columns(winners, kind=1, value=0)
            return
        # Phase 2: repair by rank-ordered report exchange.
        r0 = r - self.luby_rounds
        if r0 > 1:
            kinds = ctx.inbox.column("kind")
            values = ctx.inbox.column("value")
            sender_rank = self.rank[ctx.inbox.senders]
            big = np.int64(np.iinfo(np.int64).max)
            best_in = ctx.reduce_neighbors(
                "min", sender_rank, where=(kinds == 2) & (values == 1),
                empty=big,
            )
            covered_now = best_in < big
            leave = stepped & self.in_set & (best_in < self.rank)
            self.in_set &= ~leave
            min_uncovered = ctx.reduce_neighbors(
                "min", sender_rank, where=(kinds == 2) & (values == 0),
                empty=big,
            )
            join = stepped & ~self.in_set & ~covered_now & (
                self.rank < min_uncovered
            )
            self.in_set |= join
            self.covered = np.where(stepped, covered_now, self.covered)
        if r0 > self.repair_rounds:
            ctx.halt(stepped)
            return
        alive = np.flatnonzero(stepped)
        if alive.size:
            status = np.where(self.in_set, 1, np.where(self.covered, 2, 0))
            ctx.emit_columns(alive, kind=2, value=status[alive])

    def outputs(self, ctx: ColumnarContext) -> list:
        return [bool(flag) for flag in self.in_set]


_SELF_HEALING_MIS_VARIANTS = {
    "object": SelfHealingMIS,
    "columnar": ColumnarSelfHealingMIS,
}


class ProposalMatchingAlgorithm(NodeAlgorithm):
    """Randomized maximal matching: unmatched vertices propose to a random
    unmatched neighbour; a proposal pair (mutual or accepted) matches.

    Phase (2 rounds): propose, then accept the lowest-id proposer among
    received proposals if we also proposed or are free; matched vertices
    notify and retire.
    """

    _PROPOSE, _ACCEPT = 0, 1

    def __init__(self, horizon: int) -> None:
        super().__init__()
        self.horizon = horizon
        self.rng: random.Random | None = None
        self.free = True
        self.partner: Hashable | None = None
        self.phase = self._PROPOSE
        self.free_neighbors: set = set()
        self.proposed_to: Hashable | None = None

    def spawn(self) -> "ProposalMatchingAlgorithm":
        return ProposalMatchingAlgorithm(self.horizon)

    def initialize(self, ctx: NodeContext) -> None:
        self.rng = random.Random(self.input)
        self.free_neighbors = set(ctx.neighbors)

    def on_round(self, ctx: NodeContext, inbox: Mapping[Any, Message]):
        if not self.free:
            self.halt()
            return {}
        if ctx.round_number > self.horizon:
            raise RuntimeError("matching exceeded horizon")
        if self.phase == self._PROPOSE:
            for sender, message in inbox.items():
                kind = message.payload
                if kind == 2:  # neighbour matched elsewhere
                    self.free_neighbors.discard(sender)
            if not self.free_neighbors:
                self.free = False  # isolated among free vertices: done
                self.halt()
                return {}
            self.proposed_to = self.rng.choice(
                sorted(self.free_neighbors, key=repr)
            )
            self.phase = self._ACCEPT
            return {self.proposed_to: _MATCH_PROPOSAL}  # 0 = proposal
        # ACCEPT phase: pick the smallest-id proposer; mutual agreement
        # requires that we proposed to them or they proposed to us and we
        # accept deterministically — to avoid three-way conflicts, a match
        # forms only when the proposal was *mutual*.
        proposers = [
            sender for sender, message in inbox.items() if message.payload == 0
        ]
        self.phase = self._PROPOSE
        if self.proposed_to in proposers:
            self.partner = self.proposed_to
            self.free = False
            out = Broadcast(
                _MATCH_TAKEN,
                (u for u in self.free_neighbors if u != self.partner),
            )
            self.halt()
            return out
        return {}

    def output(self):
        return self.partner


def distributed_greedy_matching(
    graph: nx.Graph, seed: int = 0, model: str = "congest"
) -> tuple[set, NetworkMetrics]:
    """Randomized maximal matching via mutual proposals.

    Returns (matching as frozenset pairs, metrics); verified maximal.
    """
    n = graph.number_of_nodes()
    horizon = 40 * max(4, n.bit_length() ** 2)
    rng = random.Random(seed)
    inputs = {v: rng.randrange(1 << 30) for v in graph.nodes}
    net = Network(graph, model=model)
    outputs = net.run(ProposalMatchingAlgorithm(horizon),
                      max_rounds=horizon + 2, inputs=inputs)
    matching = set()
    for v, partner in outputs.items():
        if partner is not None:
            if outputs.get(partner) != v:
                raise AssertionError("asymmetric match")
            matching.add(frozenset((v, partner)))
    matched = {v for edge in matching for v in edge}
    for u, v in graph.edges:
        if u not in matched and v not in matched:
            raise AssertionError("matching not maximal")
    return matching, net.metrics


class TrialColoringAlgorithm(NodeAlgorithm):
    """Randomized (Δ+1)-colouring: uncoloured vertices try a random colour
    not used by coloured neighbours; keep it if no uncoloured neighbour
    tried the same colour this phase."""

    # Payloads are (kind, colour) over a palette of ≤ Δ+1 colours: memoize
    # the messages class-wide so each distinct payload is constructed and
    # sized once per process, not once per vertex per phase.
    _shared_messages: dict = {}

    @classmethod
    def _coloring_message(cls, kind: int, color: int) -> Message:
        key = (kind, color)
        message = cls._shared_messages.get(key)
        if message is None:
            message = cls._shared_messages[key] = Message(key)
        return message

    def __init__(self, palette_size: int, horizon: int) -> None:
        super().__init__()
        self.palette_size = palette_size
        self.horizon = horizon
        self.rng: random.Random | None = None
        self.color: int | None = None
        self.trial: int | None = None
        self.neighbor_colors: dict = {}

    def spawn(self) -> "TrialColoringAlgorithm":
        return TrialColoringAlgorithm(self.palette_size, self.horizon)

    def initialize(self, ctx: NodeContext) -> None:
        self.rng = random.Random(self.input)

    def on_round(self, ctx: NodeContext, inbox: Mapping[Any, Message]):
        if ctx.round_number > self.horizon:
            raise RuntimeError("coloring exceeded horizon")
        conflict = False
        for sender, message in inbox.items():
            kind, value = message.payload
            if kind == 1:
                self.neighbor_colors[sender] = value
            elif kind == 0 and self.color is None and value == self.trial:
                conflict = True
        # A neighbour may have *finalized* our trial colour this phase.
        if self.trial is not None and self.trial in set(
            self.neighbor_colors.values()
        ):
            conflict = True
        if self.color is None and self.trial is not None and not conflict:
            self.color = self.trial
            self.halt()
            return Broadcast(self._coloring_message(1, self.color))
        if self.color is not None:
            self.halt()
            return {}
        taken = set(self.neighbor_colors.values())
        available = [c for c in range(self.palette_size) if c not in taken]
        self.trial = self.rng.choice(available)
        return Broadcast(self._coloring_message(0, self.trial))

    def output(self):
        return self.color


class ColumnarTrialColoring(ColumnarAlgorithm):
    """Trial-colouring as a round-vectorized columnar program.

    Exact port of :class:`TrialColoringAlgorithm` — same RNG streams
    (``rng.choice`` over the ascending available-colour list), same
    ``(kind, colour)`` payloads, same finalize/draw transitions.  The
    per-edge work is vectorized: finalized neighbour colours land in an
    ``n × palette`` bitmask with one fancy-indexed scatter, and the
    same-trial conflict check is a segmented ``any`` — no Python inbox
    iteration.  The per-vertex trial draw stays Python (O(uncoloured ×
    palette) per round, like the original's local computation) in exact
    mode; under ``rng="vectorized"`` one Philox uniform column ranks
    into each drawer's ascending available-colour list via a row-wise
    cumulative sum — the same candidate sets, drawn without any
    per-vertex Python.
    """

    spec = ColumnarSpec(("kind", np.uint8), ("value", np.uint32))
    # All state is dense arrays keyed by grid row (the taken-colour
    # bitmask included), so trial-major grid batching applies.
    grid_safe = True
    rng_modes = ("exact", "vectorized")

    def __init__(self, palette_size: int, horizon: int) -> None:
        self.palette_size = palette_size
        self.horizon = horizon

    def spawn(self) -> "ColumnarTrialColoring":
        return ColumnarTrialColoring(self.palette_size, self.horizon)

    def setup(self, ctx: ColumnarContext) -> None:
        n = ctx.n
        self.color = np.full(n, -1, dtype=np.int64)
        self.trial = np.full(n, -1, dtype=np.int64)
        # taken[v, c] — a neighbour of v has *finalized* colour c;
        # taken_count tracks distinct finalized colours per row so
        # conflict-free vertices can draw from the shared full palette
        # without scanning their row.
        self.taken = np.zeros((n, max(1, self.palette_size)), dtype=bool)
        self.taken_count = np.zeros(n, dtype=np.int64)
        self.full_palette = list(range(self.palette_size))
        self.vertex_ids = np.arange(n)

    def on_round(self, ctx: ColumnarContext) -> None:
        if ctx.round_number > self.horizon:
            raise RuntimeError("coloring exceeded horizon")
        stepped = ~ctx.halted
        kinds = ctx.inbox.column("kind")
        values = ctx.inbox.column("value").astype(np.int64)
        finalized = kinds == 1
        if finalized.any():
            receivers = ctx.inbox.receivers()
            touched = receivers[finalized]
            colors = values[finalized]
            # Byzantine corruption can push a colour outside the
            # palette; an out-of-range colour can never block or
            # conflict (trials stay in-palette), so drop it rather
            # than overrun the bitmask.
            in_palette = colors < self.palette_size
            touched, colors = touched[in_palette], colors[in_palette]
            if touched.size:
                self.taken[touched, colors] = True
                rows = np.unique(touched)
                self.taken_count[rows] = self.taken[rows].sum(axis=1)
        has_trial = self.trial >= 0
        # Conflict (a): an uncoloured neighbour tried the same colour.
        trial_of_receiver = self.trial[ctx.inbox.receivers()]
        conflict = ctx.reduce_neighbors(
            "any", (kinds == 0) & (values == trial_of_receiver)
        )
        # Conflict (b): a neighbour finalized our trial colour.
        guarded_trial = np.where(has_trial, self.trial, 0)
        conflict |= has_trial & self.taken[self.vertex_ids, guarded_trial]
        uncolored = self.color < 0
        finalize = stepped & uncolored & has_trial & ~conflict
        if finalize.any():
            idx = np.flatnonzero(finalize)
            self.color[idx] = self.trial[idx]
            ctx.emit_columns(idx, kind=1, value=self.color[idx])
            ctx.halt(finalize)
        drawers = np.flatnonzero(stepped & (self.color < 0))
        if drawers.size:
            if ctx.rng.vectorized:
                self._draw_vectorized(ctx, drawers)
            else:
                self._draw_exact(ctx, drawers)
            ctx.emit_columns(drawers, kind=0, value=self.trial[drawers])

    def _draw_exact(self, ctx: ColumnarContext, drawers) -> None:
        rngs = ctx.rng.streams
        trial = self.trial
        taken = self.taken
        full = self.full_palette
        constrained = self.taken_count
        # Vertices with no finalized neighbour colour draw from the
        # shared full palette — identical RNG stream to the object
        # plane's per-vertex ``[c for c in range(palette) …]`` list
        # (same length ⇒ same ``choice`` draw), without a row scan.
        for i in drawers.tolist():
            if constrained[i]:
                # Byzantine senders can finalize several colours
                # each and exhaust the (Δ+1) palette — impossible
                # fault-free; retry from the full palette rather
                # than crash on an empty draw.
                available = np.flatnonzero(~taken[i]).tolist() or full
            else:
                available = full
            trial[i] = rngs[i].choice(available)

    def _draw_vectorized(self, ctx: ColumnarContext, drawers) -> None:
        # One uniform column ranks into each drawer's ascending
        # available-colour list: pick the k-th free colour where
        # k = ⌊u · |available|⌋, via a row-wise cumulative sum over the
        # taken bitmask.  Same candidate sets as the exact loop
        # (including the Byzantine full-palette retry), zero per-vertex
        # Python.
        avail = ~self.taken[drawers]
        counts = self.palette_size - self.taken_count[drawers]
        exhausted = counts <= 0
        if exhausted.any():
            avail[exhausted] = True
            counts = np.where(exhausted, avail.shape[1], counts)
        u = ctx.rng.uniform_rows(ctx.round_number, drawers)
        picks = np.minimum((u * counts).astype(np.int64), counts - 1)
        cumulative = np.cumsum(avail, axis=1)
        self.trial[drawers] = np.argmax(
            cumulative == (picks + 1)[:, None], axis=1
        )

    def outputs(self, ctx: ColumnarContext) -> list:
        return [None if c < 0 else int(c) for c in self.color]


_COLORING_VARIANTS = {
    "object": TrialColoringAlgorithm,
    "columnar": ColumnarTrialColoring,
}


def delta_plus_one_coloring(
    graph: nx.Graph, seed: int = 0, model: str = "congest",
    plane: str = "dict",
) -> tuple[dict, NetworkMetrics]:
    """Randomized (Δ+1)-colouring; returns ({v: colour}, metrics).

    ``plane`` is a runtime registry name (``"columnar"`` runs the
    vectorized :class:`ColumnarTrialColoring` port — identical outputs
    and metrics).  Verified proper before returning.
    """
    delta = max((d for _, d in graph.degree), default=0)
    n = graph.number_of_nodes()
    horizon = 40 * max(4, n.bit_length() ** 2)
    rng = random.Random(seed)
    inputs = {v: rng.randrange(1 << 30) for v in graph.nodes}
    net = Network(graph, model=model)
    algorithm = variant_for_plane(_COLORING_VARIANTS, plane)(
        delta + 1, horizon
    )
    outputs = net.run(
        algorithm, max_rounds=horizon + 2, inputs=inputs, plane=plane
    )
    for u, v in graph.edges:
        if outputs[u] == outputs[v]:
            raise AssertionError("coloring not proper")
    if any(color is None for color in outputs.values()):
        raise AssertionError("some vertex uncoloured")
    return outputs, net.metrics
