"""Round, message, and bit metrics; cost ledger for composite algorithms.

Two levels of accounting are used in this repository (see DESIGN.md §3):

* :class:`NetworkMetrics` — raw counters maintained by the simulator while a
  node algorithm executes: rounds, messages, bits, and the worst per-edge
  per-round load (which must never exceed the CONGEST bandwidth).

* :class:`ScalarAccountant` — the deferred form of the first: executors
  on the fast planes accumulate whole-round array reductions here and
  fold them into a :class:`NetworkMetrics` exactly once (via
  :meth:`NetworkMetrics.record_batch`) when the run ends, so per-message
  counter updates never touch the hot path.  The trial-batched grid
  executor (:mod:`repro.congest.runtime.batch`) uses a per-trial
  sibling with the same ``add(senders, bits)`` interface.

* :class:`RoundLedger` — accounting for composite *cluster-level* algorithms
  (the decomposition algorithms of Sections 4–5).  The paper analyses those
  algorithms as a sequence of primitives, each with a proven CONGEST round
  cost parameterized by measured quantities (cluster diameter D, overlap c,
  routing time T, number of load-balancing steps, …).  The ledger charges
  each primitive its measured cost and keeps a labelled breakdown so
  benchmarks can report which phase dominates.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class NetworkMetrics:
    """Raw counters for one simulated execution.

    The fault counters (``dropped``/``duplicated``/``delayed``/
    ``corrupted`` messages, ``crashed`` vertices) stay zero on
    fault-free runs — part of the zero-fault identity contract of
    :mod:`repro.congest.runtime.faults`.  ``crashed_vertices`` is the
    tuple of crashed vertex ids in crash order, so resilience reports
    (:mod:`repro.congest.validators`) can restrict guarantee checks to
    the live vertices without re-deriving the fault schedule."""

    rounds: int = 0
    messages: int = 0
    total_bits: int = 0
    max_edge_bits_in_round: int = 0
    dropped: int = 0
    duplicated: int = 0
    delayed: int = 0
    crashed: int = 0
    corrupted: int = 0
    crashed_vertices: tuple = ()

    def record_round(self) -> None:
        self.rounds += 1

    def record_message(self, bit_size: int) -> None:
        self.messages += 1
        self.total_bits += bit_size

    def record_edge_load(self, bits: int) -> None:
        if bits > self.max_edge_bits_in_round:
            self.max_edge_bits_in_round = bits

    def record_batch(
        self,
        messages: int,
        total_bits: int,
        peak_bits: int,
        *,
        dropped: int = 0,
        duplicated: int = 0,
        delayed: int = 0,
        crashed: int = 0,
        corrupted: int = 0,
    ) -> None:
        """Fold one batch of deferred counters in a single update — the
        flush path of the engine's per-round (and the columnar plane's
        per-array) reductions.  Equivalent to ``messages`` interleaved
        ``record_message``/``record_edge_load`` calls whose sizes sum to
        ``total_bits`` and peak at ``peak_bits``; the keyword-only fault
        counters fold a fault-injected run's deferred tallies the same
        way."""
        self.messages += messages
        self.total_bits += total_bits
        if peak_bits > self.max_edge_bits_in_round:
            self.max_edge_bits_in_round = peak_bits
        self.dropped += dropped
        self.duplicated += duplicated
        self.delayed += delayed
        self.crashed += crashed
        self.corrupted += corrupted

    def record_faults(
        self,
        *,
        dropped: int = 0,
        duplicated: int = 0,
        delayed: int = 0,
        crashed: int = 0,
        corrupted: int = 0,
        crashed_vertices: tuple = (),
    ) -> None:
        """Fold one fault-injected execution's adversary tallies (the
        flush path of :meth:`repro.congest.runtime.faults.FaultState.flush`)."""
        self.dropped += dropped
        self.duplicated += duplicated
        self.delayed += delayed
        self.crashed += crashed
        self.corrupted += corrupted
        if crashed_vertices:
            self.crashed_vertices = self.crashed_vertices + tuple(
                crashed_vertices
            )

    def merge(self, other: "NetworkMetrics") -> None:
        """Accumulate another execution's counters into this one (sequential
        composition: rounds add, edge peak takes the max, crashed vertex
        logs concatenate)."""
        self.rounds += other.rounds
        self.messages += other.messages
        self.total_bits += other.total_bits
        self.max_edge_bits_in_round = max(
            self.max_edge_bits_in_round, other.max_edge_bits_in_round
        )
        self.dropped += other.dropped
        self.duplicated += other.duplicated
        self.delayed += other.delayed
        self.crashed += other.crashed
        self.corrupted += other.corrupted
        if other.crashed_vertices:
            self.crashed_vertices = (
                self.crashed_vertices + other.crashed_vertices
            )


class ScalarAccountant:
    """Deferred message/bit counters for one execution.

    The columnar executors call :meth:`add` with one int64 bit-size
    array per validated emission batch (``senders`` rides along for
    interface parity with the grid's per-trial accountant and is unused
    here) and :meth:`flush` exactly once on the way out — equivalent to
    the per-message ``record_message``/``record_edge_load`` interleaving
    of the reference executor, in three scalar updates per batch.
    """

    __slots__ = ("messages", "total_bits", "peak_bits")

    def __init__(self) -> None:
        self.messages = 0
        self.total_bits = 0
        self.peak_bits = 0

    def add(self, senders, bits) -> None:
        self.messages += len(bits)
        self.total_bits += int(bits.sum())
        peak = int(bits.max())
        if peak > self.peak_bits:
            self.peak_bits = peak

    def flush(self, metrics: "NetworkMetrics") -> None:
        metrics.record_batch(self.messages, self.total_bits, self.peak_bits)


@dataclass
class RoundLedger:
    """Labelled CONGEST round cost accumulator for composite algorithms.

    Each ``charge(label, rounds)`` call adds a cost measured for one
    primitive (e.g. one BFS aggregation over a cluster of measured diameter
    D, or one execution of the routing algorithm with measured T).  The
    total is the round complexity of the sequential composition.

    Parallel phases over disjoint clusters are charged once with the
    *maximum* cluster cost via :meth:`charge_parallel`, matching the paper's
    "in parallel for all clusters" statements (congestion between
    overlapping clusters must be folded into the per-cluster cost by the
    caller, as the paper does with its factor-``c`` overhead).
    """

    breakdown: dict[str, int] = field(default_factory=dict)

    def charge(self, label: str, rounds: int) -> None:
        if rounds < 0:
            raise ValueError(f"negative round charge for {label!r}: {rounds}")
        self.breakdown[label] = self.breakdown.get(label, 0) + rounds

    def charge_parallel(self, label: str, per_cluster_rounds: list[int]) -> None:
        """Charge one parallel phase: cost is the max over clusters."""
        self.charge(label, max(per_cluster_rounds, default=0))

    def merge(self, other: "RoundLedger", prefix: str = "") -> None:
        for label, rounds in other.breakdown.items():
            self.charge(prefix + label, rounds)

    @property
    def total_rounds(self) -> int:
        return sum(self.breakdown.values())

    def __str__(self) -> str:  # pragma: no cover - debugging convenience
        lines = [f"total rounds: {self.total_rounds}"]
        for label in sorted(self.breakdown, key=self.breakdown.get, reverse=True):
            lines.append(f"  {label}: {self.breakdown[label]}")
        return "\n".join(lines)
