"""The synchronous network executor for the LOCAL and CONGEST models.

Usage sketch::

    net = Network(graph, model="congest")
    outputs = net.run(MyAlgorithm(), max_rounds=100)

``MyAlgorithm`` subclasses :class:`NodeAlgorithm`; one independent instance
is created per vertex.  The executor delivers all messages sent in round r
at the beginning of round r + 1 and stops when every node has halted (or
``max_rounds`` is hit, which raises).

Execution engine
----------------
:meth:`Network.run` keeps this public API but delegates the round loop to
the compiled-topology engine in :mod:`repro.congest.engine`: the topology
is indexed to dense ints once in ``__init__`` (adjacency as CSR arrays
plus per-vertex ``frozenset`` neighbour sets for O(1) send validation),
and the engine steps only not-yet-halted vertices per round, reusing
inbox dicts instead of reallocating ``{v: {} for v in nodes}`` each round.
The pre-engine loop is retained verbatim as :meth:`Network._run_reference`
— it is the executable specification that ``tests/test_engine.py`` checks
the engine against and the baseline ``benchmarks/bench_engine.py`` measures
speedups over.

Batch sweeps over many graphs/seeds should use
:func:`repro.congest.engine.run_many`, which fans trials out over a
``multiprocessing`` pool.

The broadcast protocol
----------------------
Instead of a dict, :meth:`NodeAlgorithm.on_round` may return a
:class:`~repro.congest.message.Broadcast` — one shared message for every
neighbour (``Broadcast(message)``, or ``ctx.broadcast(message)``) or for
an explicit subset (``Broadcast(message, to=receivers)``).  A broadcast
is *semantically* the dict ``{u: message for u in receivers}``: identical
inbox contents, per-edge message/bit accounting, bandwidth enforcement,
and validation errors.  The difference is purely operational — the engine
validates the shared payload once per broadcast and counts
``len(receivers) × bits`` with one multiply instead of paying per-edge
dict iteration, membership checks, and counter updates, which is what
makes the broadcast-heavy classic algorithms fast.  The reference
executor (:meth:`Network._run_reference`) expands a ``Broadcast`` to its
dict form up front and runs the seed loop unchanged, so differential
tests cover the protocol end to end.

Engine-level contract notes:

* the inbox mapping passed to :meth:`NodeAlgorithm.on_round` is owned by
  the executor and valid only for the duration of the call (the engine
  clears and reuses it two rounds later); algorithms must copy it if they
  need it afterwards;
* the ``Message`` inside a ``Broadcast`` is shared by every receiver —
  messages are immutable, so this is observationally identical to the
  expanded dict, whose values are the same object anyway.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Mapping

import networkx as nx

from repro.congest import engine as _engine
from repro.congest.columnar import ColumnarAlgorithm, execute_columnar
from repro.congest.message import Broadcast, Message
from repro.congest.metrics import NetworkMetrics


class BandwidthExceededError(RuntimeError):
    """A message exceeded the CONGEST per-edge per-round bandwidth."""


@dataclass
class NodeContext:
    """The per-vertex view of the network handed to a node algorithm.

    Attributes
    ----------
    node:
        This vertex's identifier (also its unique ID in the model's sense).
    neighbors:
        Tuple of adjacent vertex identifiers, in a fixed deterministic order.
    n:
        Number of vertices in the network (known to all nodes, as is standard
        for CONGEST algorithms that depend on ``log n``).
    round_number:
        Current round, starting at 0 for the initialization step.
    """

    node: Any
    neighbors: tuple
    n: int
    round_number: int = 0

    @property
    def degree(self) -> int:
        return len(self.neighbors)

    def broadcast(self, message: Message, to: Any = None) -> Broadcast:
        """Ergonomic outbox for ``on_round``: one shared ``message`` to all
        neighbours (or the subset ``to``), delivered through the engine's
        vectorized broadcast plane.  ``return ctx.broadcast(msg)`` is
        equivalent to ``return {u: msg for u in ctx.neighbors}``."""
        return Broadcast(message, to)


class NodeAlgorithm:
    """Base class for per-vertex synchronous algorithms.

    Lifecycle: the executor calls :meth:`initialize` once, then repeatedly
    calls :meth:`on_round` with the inbox of messages received that round
    (empty in the first communication round).  The algorithm returns either
    a dict mapping a subset of neighbours to :class:`Message` objects, or a
    :class:`~repro.congest.message.Broadcast` when one shared message goes
    to all neighbours (or a subset) — the fast path for broadcast-heavy
    algorithms.  Calling :meth:`halt` stops the node; the run ends when all
    nodes have halted.

    One instance of the subclass is created per vertex via ``spawn``;
    subclasses store per-vertex state on ``self``.
    """

    def __init__(self) -> None:
        self._halted = False

    # -- factory -----------------------------------------------------------
    def spawn(self) -> "NodeAlgorithm":
        """Create a fresh per-vertex instance (default: same class, no args).

        Subclasses whose ``__init__`` takes configuration should override
        this to propagate it.
        """
        return type(self)()

    # -- lifecycle hooks ----------------------------------------------------
    def initialize(self, ctx: NodeContext) -> None:
        """Set up per-vertex state.  Called once before round 1."""

    def on_round(
        self, ctx: NodeContext, inbox: Mapping[Any, Message]
    ) -> "dict[Any, Message] | Broadcast":
        """Process the inbox, update state, return outgoing messages.

        The return value is either ``{neighbor: Message}`` or a
        :class:`~repro.congest.message.Broadcast` (see
        :meth:`NodeContext.broadcast`).  ``inbox`` is owned by the
        executor and valid only for the duration of this call — copy it
        if you need it later.
        """
        raise NotImplementedError

    def output(self) -> Any:
        """The node's final output, collected after the run."""
        return None

    # -- control ------------------------------------------------------------
    def halt(self) -> None:
        self._halted = True

    @property
    def halted(self) -> bool:
        return self._halted


class Network:
    """Synchronous executor over a ``networkx.Graph``.

    Parameters
    ----------
    graph:
        The communication topology.  Vertex ids must be hashable; they play
        the role of the ``O(log n)``-bit unique identifiers of the model.
    model:
        ``"congest"`` (bandwidth-limited) or ``"local"`` (unlimited).
    bandwidth_factor:
        In CONGEST mode, each message may carry at most
        ``bandwidth_factor * ceil(log2 n)`` bits (the constant in the
        model's ``O(log n)``).  Default 32, generous enough for the tuples
        our algorithms send while still scaling as Θ(log n).
    """

    def __init__(
        self,
        graph: nx.Graph,
        model: str = "congest",
        bandwidth_factor: int = 32,
    ) -> None:
        if model not in ("congest", "local"):
            raise ValueError(f"unknown model {model!r}")
        if graph.number_of_nodes() == 0:
            raise ValueError("network must have at least one vertex")
        self.graph = graph
        self.model = model
        n = graph.number_of_nodes()
        log_n = max(1, math.ceil(math.log2(max(2, n))))
        self.bandwidth_bits = bandwidth_factor * log_n
        self.metrics = NetworkMetrics()
        self._topology = _engine.CompiledTopology.for_graph(graph)
        self._neighbors = {
            v: self._topology.neighbor_tuples[i]
            for i, v in enumerate(self._topology.vertices)
        }
        self._neighbor_sets = {
            v: self._topology.neighbor_sets[i]
            for i, v in enumerate(self._topology.vertices)
        }

    # ------------------------------------------------------------------
    def run(
        self,
        algorithm: NodeAlgorithm,
        max_rounds: int = 10_000,
        inputs: Mapping[Any, Any] | None = None,
    ) -> dict[Any, Any]:
        """Execute ``algorithm`` at every vertex until all halt.

        ``inputs`` optionally provides a per-vertex input value, exposed to
        the node as ``self.input`` before :meth:`NodeAlgorithm.initialize`.

        Returns the dict of per-vertex outputs.  Delegates to the
        compiled-topology active-set engine (see the module docstring and
        :mod:`repro.congest.engine`); semantics are identical to the
        reference loop in :meth:`_run_reference`.

        A :class:`~repro.congest.columnar.ColumnarAlgorithm` (a
        round-vectorized program with a typed
        :class:`~repro.congest.message.ColumnarSpec`) dispatches to the
        columnar delivery plane instead — same output keying, metrics
        accounting, and validation errors, with the round's traffic
        delivered as numpy columns over the compiled CSR topology.
        """
        if isinstance(algorithm, ColumnarAlgorithm):
            return execute_columnar(
                self._topology,
                algorithm,
                model=self.model,
                bandwidth_bits=self.bandwidth_bits,
                metrics=self.metrics,
                max_rounds=max_rounds,
                inputs=inputs,
            )
        return _engine.execute(
            self._topology,
            algorithm,
            model=self.model,
            bandwidth_bits=self.bandwidth_bits,
            metrics=self.metrics,
            max_rounds=max_rounds,
            inputs=inputs,
        )

    # ------------------------------------------------------------------
    def _run_reference(
        self,
        algorithm: NodeAlgorithm,
        max_rounds: int = 10_000,
        inputs: Mapping[Any, Any] | None = None,
    ) -> dict[Any, Any]:
        """The seed round loop, kept as the engine's executable spec.

        Reallocates every inbox each round and scans all vertices for
        halting — O(n) per round regardless of activity.  A ``Broadcast``
        outbox is expanded to its equivalent dict up front (the protocol's
        *definition*) and then validated, counted, and delivered exactly
        as the seed executor did per edge.  Used by ``tests/test_engine.py``
        and ``tests/test_delivery_soak.py`` for differential checks and by
        the benchmarks as the speedup baseline.  Do not optimize this
        method; optimize the engine.

        A :class:`~repro.congest.columnar.ColumnarAlgorithm` dispatches to
        the columnar plane's per-message reference executor — every
        emission expanded to ``Message`` objects, validated and counted
        one at a time — which plays the same executable-spec role for the
        columnar fast path that this loop plays for the object plane.
        """
        if isinstance(algorithm, ColumnarAlgorithm):
            return execute_columnar(
                self._topology,
                algorithm,
                model=self.model,
                bandwidth_bits=self.bandwidth_bits,
                metrics=self.metrics,
                max_rounds=max_rounds,
                inputs=inputs,
                reference=True,
            )
        n = self.graph.number_of_nodes()
        nodes: dict[Any, NodeAlgorithm] = {}
        contexts: dict[Any, NodeContext] = {}
        for v in self.graph.nodes:
            instance = algorithm.spawn()
            instance.input = None if inputs is None else inputs.get(v)
            ctx = NodeContext(node=v, neighbors=self._neighbors[v], n=n)
            instance.initialize(ctx)
            nodes[v] = instance
            contexts[v] = ctx

        inboxes: dict[Any, dict[Any, Message]] = {v: {} for v in self.graph.nodes}
        for round_number in range(1, max_rounds + 1):
            if all(node.halted for node in nodes.values()):
                break
            self.metrics.record_round()
            outboxes: dict[Any, dict[Any, Message]] = {}
            for v, node in nodes.items():
                if node.halted:
                    continue
                ctx = contexts[v]
                ctx.round_number = round_number
                sent = node.on_round(ctx, inboxes[v])
                if isinstance(sent, Broadcast):
                    sent = sent.expand(ctx.neighbors)
                if sent:
                    self._validate_and_count(v, sent)
                    outboxes[v] = sent
            inboxes = {v: {} for v in self.graph.nodes}
            for sender, sent in outboxes.items():
                for receiver, message in sent.items():
                    inboxes[receiver][sender] = message
        else:
            if not all(node.halted for node in nodes.values()):
                raise RuntimeError(
                    f"algorithm did not halt within {max_rounds} rounds"
                )
        return {v: node.output() for v, node in nodes.items()}

    # ------------------------------------------------------------------
    def _validate_and_count(self, sender: Any, sent: Mapping[Any, Message]) -> None:
        # Precomputed frozensets: membership is O(1) per message, not
        # O(deg) as with the seed's neighbour tuples.
        neighbor_set = self._neighbor_sets[sender]
        for receiver, message in sent.items():
            if receiver not in neighbor_set:
                raise ValueError(
                    f"node {sender!r} sent to non-neighbor {receiver!r}"
                )
            if not isinstance(message, Message):
                raise TypeError(
                    f"node {sender!r} sent a non-Message object: {message!r}"
                )
            if self.model == "congest" and message.bit_size > self.bandwidth_bits:
                raise BandwidthExceededError(
                    f"message of {message.bit_size} bits from {sender!r} to "
                    f"{receiver!r} exceeds CONGEST bandwidth "
                    f"{self.bandwidth_bits} bits"
                )
            self.metrics.record_message(message.bit_size)
            self.metrics.record_edge_load(message.bit_size)


class FunctionAlgorithm(NodeAlgorithm):
    """Adapter turning a plain function into a node algorithm.

    The function receives ``(state, ctx, inbox)`` and returns
    ``(new_state, outgoing, done, output)``.  Useful for small tests.
    """

    def __init__(
        self,
        step: Callable[[Any, NodeContext, Mapping[Any, Message]], tuple],
        initial_state: Callable[[NodeContext], Any] = lambda ctx: None,
    ) -> None:
        super().__init__()
        self._step = step
        self._initial_state = initial_state
        self._state: Any = None
        self._output: Any = None

    def spawn(self) -> "FunctionAlgorithm":
        return FunctionAlgorithm(self._step, self._initial_state)

    def initialize(self, ctx: NodeContext) -> None:
        self._state = self._initial_state(ctx)

    def on_round(self, ctx, inbox):
        self._state, outgoing, done, self._output = self._step(
            self._state, ctx, inbox
        )
        if done:
            self.halt()
        return outgoing

    def output(self) -> Any:
        return self._output
