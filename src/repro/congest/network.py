"""The synchronous network executor for the LOCAL and CONGEST models.

Usage sketch::

    net = Network(graph, model="congest")
    outputs = net.run(MyAlgorithm(), max_rounds=100)

``MyAlgorithm`` subclasses :class:`NodeAlgorithm`; one independent instance
is created per vertex.  The executor delivers all messages sent in round r
at the beginning of round r + 1 and stops when every node has halted (or
``max_rounds`` is hit, which raises).

Execution planes
----------------
:meth:`Network.run` keeps this public API but is a thin facade over the
**runtime plane registry** (:mod:`repro.congest.runtime.planes`): the
topology is compiled to dense ints once in ``__init__`` (via the
runtime's single compilation entry), and the plane that actually steps
the rounds is resolved *by name* — ``run(algorithm, plane="broadcast")``
— or automatically from the algorithm's declared ``plane_kind``
(``plane=None``/``"auto"``).  There is no ``isinstance`` dispatch here:
object-family algorithms (:class:`NodeAlgorithm`) resolve to the
broadcast-aware active-set engine, columnar-family ones
(:class:`~repro.congest.columnar.ColumnarAlgorithm`) to the columnar
plane, and the per-message reference executors back both families as
their executable specs (:meth:`Network._run_reference`, which
``tests/test_engine.py`` and ``tests/test_columnar.py`` check the fast
planes against and the benchmarks measure speedups over).

Batch sweeps over many graphs/seeds should use
:func:`repro.congest.run_many` (:mod:`repro.congest.runtime.batch`),
which grid-batches grid-safe columnar sweeps into one block-diagonal
execution and otherwise fans trials out over a ``multiprocessing`` pool.

The broadcast protocol
----------------------
Instead of a dict, :meth:`NodeAlgorithm.on_round` may return a
:class:`~repro.congest.message.Broadcast` — one shared message for every
neighbour (``Broadcast(message)``, or ``ctx.broadcast(message)``) or for
an explicit subset (``Broadcast(message, to=receivers)``).  A broadcast
is *semantically* the dict ``{u: message for u in receivers}``: identical
inbox contents, per-edge message/bit accounting, bandwidth enforcement,
and validation errors.  The difference is purely operational — the engine
validates the shared payload once per broadcast and counts
``len(receivers) × bits`` with one multiply instead of paying per-edge
dict iteration, membership checks, and counter updates, which is what
makes the broadcast-heavy classic algorithms fast.  The reference
executor (:meth:`Network._run_reference`) expands a ``Broadcast`` to its
dict form up front and runs the seed loop unchanged, so differential
tests cover the protocol end to end.

Engine-level contract notes:

* the inbox mapping passed to :meth:`NodeAlgorithm.on_round` is owned by
  the executor and valid only for the duration of the call (the engine
  clears and reuses it two rounds later); algorithms must copy it if they
  need it afterwards;
* the ``Message`` inside a ``Broadcast`` is shared by every receiver —
  messages are immutable, so this is observationally identical to the
  expanded dict, whose values are the same object anyway.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping

import networkx as nx

from repro.congest.message import Broadcast, Message, bandwidth_bits_for
from repro.congest.metrics import NetworkMetrics
from repro.congest.runtime.compile import compile_topology
from repro.congest.runtime.planes import reference_plane_for, resolve_plane
from repro.congest.runtime.rng import RngPlan, supports_vectorized


class BandwidthExceededError(RuntimeError):
    """A message exceeded the CONGEST per-edge per-round bandwidth."""


@dataclass
class NodeContext:
    """The per-vertex view of the network handed to a node algorithm.

    Attributes
    ----------
    node:
        This vertex's identifier (also its unique ID in the model's sense).
    neighbors:
        Tuple of adjacent vertex identifiers, in a fixed deterministic order.
    n:
        Number of vertices in the network (known to all nodes, as is standard
        for CONGEST algorithms that depend on ``log n``).
    round_number:
        Current round, starting at 0 for the initialization step.
    """

    node: Any
    neighbors: tuple
    n: int
    round_number: int = 0

    @property
    def degree(self) -> int:
        return len(self.neighbors)

    def broadcast(self, message: Message, to: Any = None) -> Broadcast:
        """Ergonomic outbox for ``on_round``: one shared ``message`` to all
        neighbours (or the subset ``to``), delivered through the engine's
        vectorized broadcast plane.  ``return ctx.broadcast(msg)`` is
        equivalent to ``return {u: msg for u in ctx.neighbors}``."""
        return Broadcast(message, to)


class NodeAlgorithm:
    """Base class for per-vertex synchronous algorithms.

    Lifecycle: the executor calls :meth:`initialize` once, then repeatedly
    calls :meth:`on_round` with the inbox of messages received that round
    (empty in the first communication round).  The algorithm returns either
    a dict mapping a subset of neighbours to :class:`Message` objects, or a
    :class:`~repro.congest.message.Broadcast` when one shared message goes
    to all neighbours (or a subset) — the fast path for broadcast-heavy
    algorithms.  Calling :meth:`halt` stops the node; the run ends when all
    nodes have halted.

    One instance of the subclass is created per vertex via ``spawn``;
    subclasses store per-vertex state on ``self``.

    ``plane_kind = "object"`` declares the execution-plane family to the
    runtime registry (:mod:`repro.congest.runtime.planes`): object-family
    algorithms run on the ``reference``/``object``/``broadcast`` planes,
    resolved by name — never by ``isinstance``.  ``rng_modes`` declares
    which randomness disciplines the algorithm implements
    (:mod:`repro.congest.runtime.rng`); object-family algorithms draw
    from per-vertex ``random.Random`` state directly, so they support
    only the byte-identity default.
    """

    plane_kind = "object"
    rng_modes = ("exact",)

    def __init__(self) -> None:
        self._halted = False

    # -- factory -----------------------------------------------------------
    def spawn(self) -> "NodeAlgorithm":
        """Create a fresh per-vertex instance (default: same class, no args).

        Subclasses whose ``__init__`` takes configuration should override
        this to propagate it.
        """
        return type(self)()

    # -- lifecycle hooks ----------------------------------------------------
    def initialize(self, ctx: NodeContext) -> None:
        """Set up per-vertex state.  Called once before round 1."""

    def on_round(
        self, ctx: NodeContext, inbox: Mapping[Any, Message]
    ) -> "dict[Any, Message] | Broadcast":
        """Process the inbox, update state, return outgoing messages.

        The return value is either ``{neighbor: Message}`` or a
        :class:`~repro.congest.message.Broadcast` (see
        :meth:`NodeContext.broadcast`).  ``inbox`` is owned by the
        executor and valid only for the duration of this call — copy it
        if you need it later.
        """
        raise NotImplementedError

    def output(self) -> Any:
        """The node's final output, collected after the run."""
        return None

    # -- control ------------------------------------------------------------
    def halt(self) -> None:
        self._halted = True

    @property
    def halted(self) -> bool:
        return self._halted


class Network:
    """Synchronous executor over a ``networkx.Graph``.

    Parameters
    ----------
    graph:
        The communication topology.  Vertex ids must be hashable; they play
        the role of the ``O(log n)``-bit unique identifiers of the model.
    model:
        ``"congest"`` (bandwidth-limited) or ``"local"`` (unlimited).
    bandwidth_factor:
        In CONGEST mode, each message may carry at most
        ``bandwidth_factor * ceil(log2 n)`` bits (the constant in the
        model's ``O(log n)``).  Default 32, generous enough for the tuples
        our algorithms send while still scaling as Θ(log n).
    """

    def __init__(
        self,
        graph: nx.Graph,
        model: str = "congest",
        bandwidth_factor: int = 32,
    ) -> None:
        if model not in ("congest", "local"):
            raise ValueError(f"unknown model {model!r}")
        if graph.number_of_nodes() == 0:
            raise ValueError("network must have at least one vertex")
        self.graph = graph
        self.model = model
        self.bandwidth_bits = bandwidth_bits_for(
            graph.number_of_nodes(), bandwidth_factor
        )
        self.metrics = NetworkMetrics()
        self._topology = compile_topology(graph)

    # ------------------------------------------------------------------
    def run(
        self,
        algorithm: NodeAlgorithm,
        max_rounds: int = 10_000,
        inputs: Mapping[Any, Any] | None = None,
        plane: str | None = None,
        faults=None,
        rng=None,
    ) -> dict[Any, Any]:
        """Execute ``algorithm`` at every vertex until all halt.

        ``inputs`` optionally provides a per-vertex input value, exposed to
        the node as ``self.input`` before :meth:`NodeAlgorithm.initialize`.

        Returns the dict of per-vertex outputs.  ``plane`` selects the
        execution plane by registry name
        (:mod:`repro.congest.runtime.planes` — ``reference``, ``object``,
        ``broadcast``, ``columnar``, ``columnar-reference``);
        ``None``/``"auto"`` resolves the fastest plane of the algorithm's
        declared family (``plane_kind``).  Every plane keeps the same
        observable contract: output keying in ``graph.nodes`` order,
        identical :class:`~repro.congest.metrics.NetworkMetrics`
        counters, identical validation errors.

        ``faults`` optionally takes a
        :class:`~repro.congest.runtime.faults.FaultPlan` applied by the
        plane's executor (crash-stop, drop, duplication, bounded delay);
        the fault counters land on :attr:`metrics`.  A zero plan is
        byte-identical to ``faults=None`` on every plane.

        ``rng`` optionally takes an
        :class:`~repro.congest.runtime.rng.RngPlan` (or a mode string):
        ``"exact"`` — the default — is byte-identical to ``rng=None``;
        ``"vectorized"`` requires the algorithm to declare it in
        ``rng_modes`` and is rejected here otherwise, before any plane
        executes.
        """
        rng_plan = RngPlan.coerce(rng)
        if rng_plan.vectorized and not supports_vectorized(algorithm):
            raise ValueError(
                f"{type(algorithm).__name__} does not support rng mode "
                f"'vectorized': its rng_modes are "
                f"{tuple(getattr(algorithm, 'rng_modes', ('exact',)))}"
            )
        executor = resolve_plane(algorithm, plane)
        return executor.execute(
            self._topology,
            algorithm,
            model=self.model,
            bandwidth_bits=self.bandwidth_bits,
            metrics=self.metrics,
            max_rounds=max_rounds,
            inputs=inputs,
            faults=faults,
            rng=rng_plan if rng_plan.vectorized else None,
        )

    # ------------------------------------------------------------------
    def _run_reference(
        self,
        algorithm: NodeAlgorithm,
        max_rounds: int = 10_000,
        inputs: Mapping[Any, Any] | None = None,
        faults=None,
        rng=None,
    ) -> dict[Any, Any]:
        """Run on the algorithm family's per-message reference plane.

        Object-family algorithms get the retained seed loop
        (:func:`repro.congest.runtime.scheduler.execute_reference` —
        every inbox reallocated, every vertex scanned, every message
        validated and counted one at a time); columnar programs get the
        per-``Message`` columnar reference executor.  Both are the
        executable specifications the fast planes are differentially
        tested against (``tests/test_engine.py``,
        ``tests/test_columnar.py``, ``tests/test_delivery_soak.py``) and
        the baselines the benchmarks measure speedups over.
        """
        rng_plan = RngPlan.coerce(rng)
        executor = reference_plane_for(algorithm)
        return executor.execute(
            self._topology,
            algorithm,
            model=self.model,
            bandwidth_bits=self.bandwidth_bits,
            metrics=self.metrics,
            max_rounds=max_rounds,
            inputs=inputs,
            faults=faults,
            rng=rng_plan if rng_plan.vectorized else None,
        )


class FunctionAlgorithm(NodeAlgorithm):
    """Adapter turning a plain function into a node algorithm.

    The function receives ``(state, ctx, inbox)`` and returns
    ``(new_state, outgoing, done, output)``.  Useful for small tests.
    """

    def __init__(
        self,
        step: Callable[[Any, NodeContext, Mapping[Any, Message]], tuple],
        initial_state: Callable[[NodeContext], Any] = lambda ctx: None,
    ) -> None:
        super().__init__()
        self._step = step
        self._initial_state = initial_state
        self._state: Any = None
        self._output: Any = None

    def spawn(self) -> "FunctionAlgorithm":
        return FunctionAlgorithm(self._step, self._initial_state)

    def initialize(self, ctx: NodeContext) -> None:
        self._state = self._initial_state(ctx)

    def on_round(self, ctx, inbox):
        self._state, outgoing, done, self._output = self._step(
            self._state, ctx, inbox
        )
        if done:
            self.halt()
        return outgoing

    def output(self) -> Any:
        return self._output
