"""(1 − ε)-approximate maximum independent set (Corollary 6.5).

Pipeline: Solomon's MIS sparsifier drops vertices of degree ≥ O(α²/ε);
decompose with ε* = ε/(α(2α − 1)); leaders solve their clusters exactly;
for every inter-cluster edge with both endpoints selected, drop one.  The
paper's accounting: OPT ≥ |V|/(2α − 1) ≥ |E|/(α(2α − 1)), so the ≤ ε*|E|
dropped endpoints cost only an ε factor — giving the near-optimal
O(ε⁻¹ log* n) + poly(1/ε) round complexity against the Lenzen–Wattenhofer
Ω(ε⁻¹ log* n) lower bound.
"""

from __future__ import annotations

import networkx as nx

from repro.applications._template import ApproxResult, Decomposer, default_decomposer
from repro.applications.baselines import greedy_maximal_independent_set
from repro.applications.exact import ExactBudgetExceeded, maximum_independent_set_exact
from repro.applications.sparsifiers import mis_sparsifier


def approximate_maximum_independent_set(
    graph: nx.Graph,
    epsilon: float,
    alpha: int | None = None,
    decomposer: Decomposer | None = None,
    use_sparsifier: bool = True,
    cluster_budget: int = 500_000,
) -> ApproxResult:
    """Corollary 6.5.  ``solution`` is the independent vertex set."""
    if not 0 < epsilon < 1:
        raise ValueError("epsilon must lie in (0, 1)")
    if alpha is None:
        from repro.graphs.arboricity import degeneracy

        alpha = max(1, degeneracy(graph))
    working = mis_sparsifier(graph, epsilon / 2.0, alpha) if use_sparsifier else graph
    epsilon_star = (epsilon / 2.0) / max(1, alpha * (2 * alpha - 1))
    decomposer = decomposer or default_decomposer
    decomposition = decomposer(working, epsilon_star)
    independent: set = set()
    exact_count, total = 0, 0
    for members in decomposition.cluster_members().values():
        sub = working.subgraph(members)
        if sub.number_of_nodes() == 0:
            continue
        total += 1
        try:
            independent |= maximum_independent_set_exact(sub, budget=cluster_budget)
            exact_count += 1
        except ExactBudgetExceeded:
            independent |= greedy_maximal_independent_set(sub)
    # Resolve conflicts on inter-cluster edges: drop the smaller-id endpoint.
    for u, v in decomposition.clustering.inter_cluster_edges(working):
        if u in independent and v in independent:
            independent.discard(min(u, v, key=repr))
    _assert_independent(graph, independent)
    return ApproxResult(
        solution=independent,
        value=len(independent),
        decomposition=decomposition,
        exact_clusters=exact_count,
        total_clusters=total,
        construction_rounds=decomposition.construction_rounds,
        routing_rounds=decomposition.routing_rounds,
        extras={"epsilon_star": epsilon_star},
    )


def _assert_independent(graph: nx.Graph, independent: set) -> None:
    for u, v in graph.edges:
        if u in independent and v in independent:
            raise AssertionError(f"edge ({u!r}, {v!r}) inside independent set")
