"""Exact combinatorial solvers for cluster-local computation.

In the model, a cluster leader that has gathered G[S] may spend unbounded
local computation; the approximation corollaries of Section 6.1 rely on
leaders solving their clusters *optimally*.  These solvers are exact, with
explicit work budgets so a misparameterized call fails loudly
(:class:`ExactBudgetExceeded`) instead of hanging:

* maximum independent set — branch & reduce (degree-0/1 reductions,
  component splitting, max-degree branching with a clique-cover-free upper
  bound); handles the few-hundred-vertex sparse clusters our
  decompositions produce.
* minimum vertex cover — complement of the maximum independent set.
* maximum matching — Blossom via networkx (polynomial, always exact).
* maximum cut — exact bitmask enumeration up to 20 vertices, otherwise
  deterministic 1-flip local search (used only where tests/benches accept
  the documented fallback; the flag in the return value says which ran).
"""

from __future__ import annotations

import itertools
from typing import Hashable

import networkx as nx


class ExactBudgetExceeded(RuntimeError):
    """The branch-and-reduce search exceeded its node budget."""


# ---------------------------------------------------------------------------
# Maximum independent set (branch & reduce)
# ---------------------------------------------------------------------------
def maximum_independent_set_exact(
    graph: nx.Graph, budget: int = 2_000_000
) -> set:
    """An exact maximum independent set of ``graph``.

    Branch & reduce with component splitting; raises
    :class:`ExactBudgetExceeded` if the search tree outgrows ``budget``.
    """
    adjacency = {v: set(graph.neighbors(v)) for v in graph.nodes}
    counter = [budget]

    def solve(nodes: set) -> set:
        counter[0] -= 1
        if counter[0] < 0:
            raise ExactBudgetExceeded(
                f"MIS budget exhausted on {graph.number_of_nodes()}-vertex input"
            )
        if not nodes:
            return set()
        # Reductions: pull in isolated and degree-1 vertices greedily
        # (always safe for MIS).
        chosen: set = set()
        nodes = set(nodes)
        changed = True
        while changed:
            changed = False
            for v in list(nodes):
                if v not in nodes:
                    continue
                neighbors = adjacency[v] & nodes
                if len(neighbors) == 0:
                    chosen.add(v)
                    nodes.discard(v)
                    changed = True
                elif len(neighbors) == 1:
                    chosen.add(v)
                    nodes.discard(v)
                    nodes -= neighbors
                    changed = True
        if not nodes:
            return chosen
        # Component splitting.
        component = _component_of(next(iter(nodes)), nodes, adjacency)
        if len(component) < len(nodes):
            return (
                chosen
                | solve(component)
                | solve(nodes - component)
            )
        # Branch on a maximum-degree vertex.
        v = max(nodes, key=lambda u: (len(adjacency[u] & nodes), repr(u)))
        neighbors = adjacency[v] & nodes
        with_v = solve(nodes - neighbors - {v}) | {v}
        without_v = solve(nodes - {v})
        best = with_v if len(with_v) >= len(without_v) else without_v
        return chosen | best

    result = solve(set(graph.nodes))
    _assert_independent(graph, result)
    return result


def _component_of(start: Hashable, nodes: set, adjacency: dict) -> set:
    seen = {start}
    stack = [start]
    while stack:
        u = stack.pop()
        for w in adjacency[u] & nodes:
            if w not in seen:
                seen.add(w)
                stack.append(w)
    return seen


def _assert_independent(graph: nx.Graph, independent_set: set) -> None:
    for u, v in graph.edges:
        if u in independent_set and v in independent_set:
            raise AssertionError(f"edge ({u!r}, {v!r}) inside independent set")


# ---------------------------------------------------------------------------
# Minimum vertex cover and maximum matching
# ---------------------------------------------------------------------------
def minimum_vertex_cover_exact(graph: nx.Graph, budget: int = 2_000_000) -> set:
    """Exact minimum vertex cover = V ∖ (maximum independent set)."""
    independent = maximum_independent_set_exact(graph, budget=budget)
    cover = set(graph.nodes) - independent
    for u, v in graph.edges:
        if u not in cover and v not in cover:
            raise AssertionError("complement of MIS failed to cover an edge")
    return cover


def maximum_matching_exact(graph: nx.Graph) -> set[frozenset]:
    """Exact maximum-cardinality matching (Blossom algorithm)."""
    matching = nx.max_weight_matching(graph, maxcardinality=True)
    return {frozenset(edge) for edge in matching}


# ---------------------------------------------------------------------------
# Maximum cut
# ---------------------------------------------------------------------------
def max_cut_exact(graph: nx.Graph, max_nodes: int = 20) -> tuple[set, int]:
    """Exact maximum cut by enumeration; limited to ``max_nodes`` vertices.

    Returns ``(side, cut_value)``.
    """
    n = graph.number_of_nodes()
    if n > max_nodes:
        raise ValueError(f"exact max cut limited to {max_nodes} nodes, got {n}")
    nodes = list(graph.nodes)
    if n <= 1:
        return set(), 0
    anchor, rest = nodes[0], nodes[1:]
    edge_list = list(graph.edges)
    best_side, best_value = set(), 0
    for r in range(len(rest) + 1):
        for combo in itertools.combinations(rest, r):
            side = {anchor, *combo}
            value = sum(1 for u, v in edge_list if (u in side) != (v in side))
            if value > best_value:
                best_side, best_value = set(side), value
    return best_side, best_value


def max_cut_local_search(graph: nx.Graph) -> tuple[set, int]:
    """Deterministic 1-flip local optimum for max cut.

    Guarantees cut ≥ m/2 (every vertex has ≥ half its edges cut at a local
    optimum).  Starts from a BFS 2-colouring (optimal on bipartite
    clusters) and flips improving vertices in id order until none remains.
    """
    side: set = set()
    for component in nx.connected_components(graph):
        coloring = nx.algorithms.bipartite.color(graph.subgraph(component)) \
            if nx.is_bipartite(graph.subgraph(component)) else None
        if coloring is not None:
            side |= {v for v, c in coloring.items() if c == 1}
        else:
            # Greedy start: alternate by BFS depth.
            root = min(component, key=repr)
            for depth, layer in enumerate(
                nx.bfs_layers(graph.subgraph(component), [root])
            ):
                if depth % 2:
                    side |= set(layer)
    improved = True
    while improved:
        improved = False
        for v in sorted(graph.nodes, key=repr):
            cut_edges = sum(
                1 for u in graph.neighbors(v) if (u in side) != (v in side)
            )
            uncut_edges = graph.degree[v] - cut_edges
            if uncut_edges > cut_edges:
                if v in side:
                    side.discard(v)
                else:
                    side.add(v)
                improved = True
    value = sum(1 for u, v in graph.edges if (u in side) != (v in side))
    return side, value


def max_cut_cluster(graph: nx.Graph, exact_limit: int = 18) -> tuple[set, int, bool]:
    """Leader-side max cut: exact when small, local search otherwise.

    Returns ``(side, value, exact_flag)``.
    """
    if graph.number_of_nodes() <= exact_limit:
        side, value = max_cut_exact(graph, max_nodes=exact_limit)
        return side, value, True
    side, value = max_cut_local_search(graph)
    return side, value, False
