"""(1 − ε)-approximate maximum cut (Corollary 6.3).

Decompose with ε/2, let every cluster leader compute a maximum cut of its
cluster, and take the union of the cluster sides.  Ignoring the ≤ (ε/2)|E|
inter-cluster edges costs at most (ε/2)|E| ≤ ε·OPT cut value (OPT ≥ |E|/2),
so the combined cut is (1 − ε)-approximate.
"""

from __future__ import annotations

import networkx as nx

from repro.applications._template import ApproxResult, Decomposer, default_decomposer
from repro.applications.exact import max_cut_cluster


def approximate_max_cut(
    graph: nx.Graph,
    epsilon: float,
    decomposer: Decomposer | None = None,
    exact_limit: int = 18,
) -> ApproxResult:
    """Corollary 6.3.  Returns an :class:`ApproxResult` whose ``solution``
    is one side of the cut and ``value`` the number of cut edges.

    Cluster leaders solve exactly up to ``exact_limit`` vertices and fall
    back to the deterministic local-search optimum above it (tracked in
    ``exact_clusters``; the local optimum still guarantees ≥ m_S/2 per
    cluster, hence a global ½-approximation even in the fallback regime).
    """
    if not 0 < epsilon < 1:
        raise ValueError("epsilon must lie in (0, 1)")
    decomposer = decomposer or default_decomposer
    decomposition = decomposer(graph, epsilon / 2.0)
    side: set = set()
    exact_count, total = 0, 0
    for members in decomposition.cluster_members().values():
        sub = graph.subgraph(members)
        if sub.number_of_edges() == 0:
            continue
        total += 1
        cluster_side, _value, exact = max_cut_cluster(sub, exact_limit=exact_limit)
        side |= cluster_side
        exact_count += int(exact)
    value = sum(1 for u, v in graph.edges if (u in side) != (v in side))
    return ApproxResult(
        solution=side,
        value=value,
        decomposition=decomposition,
        exact_clusters=exact_count,
        total_clusters=total,
        construction_rounds=decomposition.construction_rounds,
        routing_rounds=decomposition.routing_rounds,
    )
