"""Minimum dominating set via the decomposition template — an *extension*.

The paper's Section 7 asks which further problems fit the
decompose-and-solve-locally framework.  Minimum dominating set is the
classic candidate (the related work solves it in LOCAL on planar graphs
[CHW08, ASS19, LPW13]); it does **not** admit a Solomon-style
bounded-degree sparsifier, so the paper leaves it open.  We implement the
natural decomposition algorithm and *measure* its quality instead of
claiming a (1 + ε) bound:

* decompose with parameter ε;
* each cluster leader gathers G[S ∪ N(S)] (one extra hop — still O(T + 1)
  routing) and solves the *covering* problem exactly: the smallest subset
  of S ∪ N(S) dominating all of S;
* the union over clusters dominates V.

Soundness is unconditional (every vertex lies in some cluster and is
dominated by that cluster's solution).  The cost bound is
Σ_S OPT_S ≤ Σ_S |OPT ∩ (S ∪ N(S))|, i.e. optimal up to the multiplicity
with which OPT vertices appear in neighbourhood-closed clusters — small
when the decomposition's boundary is small, which the benchmark reports.
"""

from __future__ import annotations

import itertools
from typing import Hashable

import networkx as nx

from repro.applications._template import ApproxResult, Decomposer, default_decomposer
from repro.applications.exact import ExactBudgetExceeded


def greedy_dominating_set(graph: nx.Graph) -> set:
    """Classic ln(Δ)-greedy: repeatedly take the vertex covering the most
    uncovered vertices (the sequential baseline)."""
    uncovered = set(graph.nodes)
    dominating: set = set()
    while uncovered:
        best = max(
            graph.nodes,
            key=lambda v: (
                len(({v} | set(graph.neighbors(v))) & uncovered),
                repr(v),
            ),
        )
        dominating.add(best)
        uncovered -= {best} | set(graph.neighbors(best))
    return dominating


def minimum_dominating_set_exact(
    graph: nx.Graph,
    targets: set | None = None,
    candidates: set | None = None,
    budget: int = 500_000,
) -> set:
    """Smallest subset of ``candidates`` dominating every vertex of
    ``targets`` (defaults: all of V for both).

    Branch & bound on the most-constrained uncovered target; greedy upper
    bound for pruning.  Raises :class:`ExactBudgetExceeded` on blow-up.
    """
    targets = set(graph.nodes) if targets is None else set(targets)
    candidates = set(graph.nodes) if candidates is None else set(candidates)
    closed: dict[Hashable, set] = {
        v: ({v} | set(graph.neighbors(v))) for v in graph.nodes
    }
    for t in targets:
        if not (closed[t] & candidates):
            raise ValueError(f"target {t!r} cannot be dominated by candidates")

    # Greedy upper bound (also the incumbent).
    incumbent: set = set()
    uncovered = set(targets)
    while uncovered:
        best = max(
            candidates,
            key=lambda v: (len(closed[v] & uncovered), repr(v)),
        )
        incumbent.add(best)
        uncovered -= closed[best]
    best_solution = [set(incumbent)]
    counter = [budget]

    def lower_bound(uncovered_now: set) -> int:
        """Disjoint closed-neighbourhood packing: targets no single
        candidate can cover in pairs each need their own dominator."""
        if not uncovered_now:
            return 0
        blocked: set = set()
        packing = 0
        for t in sorted(
            uncovered_now, key=lambda x: (len(closed[x] & candidates), repr(x))
        ):
            dominators = closed[t] & candidates
            if dominators & blocked:
                continue
            packing += 1
            blocked |= dominators
        return packing

    def branch(uncovered_now: set, chosen: set) -> None:
        counter[0] -= 1
        if counter[0] < 0:
            raise ExactBudgetExceeded("dominating-set budget exhausted")
        if not uncovered_now:
            if len(chosen) < len(best_solution[0]):
                best_solution[0] = set(chosen)
            return
        if len(chosen) + lower_bound(uncovered_now) >= len(best_solution[0]):
            return
        # Branch on the hardest target: fewest candidate dominators.
        target = min(
            uncovered_now,
            key=lambda t: (len(closed[t] & candidates), repr(t)),
        )
        options = sorted(
            closed[target] & candidates,
            key=lambda v: (-len(closed[v] & uncovered_now), repr(v)),
        )
        for v in options:
            branch(uncovered_now - closed[v], chosen | {v})

    branch(set(targets), set())
    result = best_solution[0]
    leftover = {t for t in targets if not (closed[t] & result)}
    if leftover:
        raise AssertionError(f"dominating set misses targets {leftover}")
    return result


def approximate_minimum_dominating_set(
    graph: nx.Graph,
    epsilon: float,
    decomposer: Decomposer | None = None,
    cluster_budget: int = 20_000,
) -> ApproxResult:
    """The extension algorithm (see module docstring); quality is measured,
    not guaranteed — ``extras['boundary_multiplicity']`` reports the
    overlap factor the analysis depends on."""
    if not 0 < epsilon < 1:
        raise ValueError("epsilon must lie in (0, 1)")
    decomposer = decomposer or default_decomposer
    decomposition = decomposer(graph, epsilon / 2.0)
    dominating: set = set()
    exact_count, total = 0, 0
    multiplicity: dict[Hashable, int] = {}
    for members in decomposition.cluster_members().values():
        closed_cluster = set(members)
        for v in members:
            closed_cluster.update(graph.neighbors(v))
        for v in closed_cluster:
            multiplicity[v] = multiplicity.get(v, 0) + 1
        sub = graph.subgraph(closed_cluster)
        total += 1
        try:
            dominating |= minimum_dominating_set_exact(
                sub,
                targets=set(members),
                candidates=closed_cluster,
                budget=cluster_budget,
            )
            exact_count += 1
        except ExactBudgetExceeded:
            # Greedy restricted to the cluster's covering problem.
            uncovered = set(members)
            while uncovered:
                best = max(
                    closed_cluster,
                    key=lambda v: (
                        len(({v} | set(graph.neighbors(v))) & uncovered),
                        repr(v),
                    ),
                )
                dominating.add(best)
                uncovered -= {best} | set(graph.neighbors(best))
    _assert_dominating(graph, dominating)
    return ApproxResult(
        solution=dominating,
        value=len(dominating),
        decomposition=decomposition,
        exact_clusters=exact_count,
        total_clusters=total,
        construction_rounds=decomposition.construction_rounds,
        routing_rounds=decomposition.routing_rounds,
        extras={
            "boundary_multiplicity": max(multiplicity.values(), default=1),
        },
    )


def _assert_dominating(graph: nx.Graph, dominating: set) -> None:
    for v in graph.nodes:
        if v not in dominating and not any(
            u in dominating for u in graph.neighbors(v)
        ):
            raise AssertionError(f"vertex {v!r} not dominated")
