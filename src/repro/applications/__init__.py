"""Applications of the (ε, D, T)-decomposition (Section 6).

Distributed approximation (§6.1): max cut (Cor 6.3), maximum matching and
minimum vertex cover (Cor 6.4), maximum independent set (Cor 6.5) — each
built on the same template: decompose, have every cluster leader solve its
cluster exactly (free local computation), combine, and fix up the
inter-cluster boundary.  Solomon's bounded-degree sparsifiers reduce the
degree to O(1/ε) first where the paper uses them.

Distributed property testing (§6.2): testing of additive minor-closed
properties (Cor 6.6), with the Barenboim–Elkin forests-decomposition error
detection and the Lemma 2.7 degree check.

Baselines: the greedy/sequential algorithms the approximation benchmarks
compare against.
"""

from repro.applications.exact import (
    ExactBudgetExceeded,
    max_cut_exact,
    max_cut_local_search,
    maximum_independent_set_exact,
    maximum_matching_exact,
    minimum_vertex_cover_exact,
)
from repro.applications.sparsifiers import (
    matching_sparsifier,
    mis_sparsifier,
    vertex_cover_sparsifier,
)
from repro.applications.max_cut import approximate_max_cut
from repro.applications.matching import approximate_maximum_matching
from repro.applications.vertex_cover import approximate_minimum_vertex_cover
from repro.applications.independent_set import approximate_maximum_independent_set
from repro.applications.baselines import (
    greedy_matching,
    greedy_maximal_independent_set,
    greedy_vertex_cover,
    local_search_max_cut,
)
from repro.applications.dominating_set import (
    approximate_minimum_dominating_set,
    greedy_dominating_set,
    minimum_dominating_set_exact,
)
from repro.applications.forest_check import certify_arboricity
from repro.applications.property_testing import (
    PROPERTY_REGISTRY,
    PropertyTestVerdict,
    test_minor_closed_property,
)

__all__ = [
    "ExactBudgetExceeded",
    "max_cut_exact",
    "max_cut_local_search",
    "maximum_independent_set_exact",
    "maximum_matching_exact",
    "minimum_vertex_cover_exact",
    "matching_sparsifier",
    "mis_sparsifier",
    "vertex_cover_sparsifier",
    "approximate_max_cut",
    "approximate_maximum_matching",
    "approximate_minimum_vertex_cover",
    "approximate_maximum_independent_set",
    "greedy_matching",
    "greedy_maximal_independent_set",
    "greedy_vertex_cover",
    "local_search_max_cut",
    "approximate_minimum_dominating_set",
    "greedy_dominating_set",
    "minimum_dominating_set_exact",
    "certify_arboricity",
    "PROPERTY_REGISTRY",
    "PropertyTestVerdict",
    "test_minor_closed_property",
]
