"""Shared template for the Section 6.1 approximation algorithms.

Every corollary follows the same recipe: build an (ε*, D, T)-decomposition,
let each cluster leader solve its cluster exactly, combine the cluster
solutions, and patch the inter-cluster boundary.  This module holds the
result container and the default decomposer so the four application
modules stay small and symmetric.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import networkx as nx

from repro.decomposition.edt import edt_decomposition
from repro.decomposition.types import EDTDecomposition


@dataclass
class ApproxResult:
    """Outcome of one distributed approximation run.

    ``solution`` is problem-shaped (vertex set, or set of frozenset edges);
    ``value`` its objective; ``exact_clusters`` / ``total_clusters`` report
    how many clusters the leader solved exactly vs via the documented
    fallback; round counts come from the decomposition's ledger and
    measured routing.
    """

    solution: Any
    value: float
    decomposition: EDTDecomposition
    exact_clusters: int = 0
    total_clusters: int = 0
    construction_rounds: int = 0
    routing_rounds: int = 0
    extras: dict = field(default_factory=dict)

    @property
    def all_exact(self) -> bool:
        return self.exact_clusters == self.total_clusters


Decomposer = Callable[[nx.Graph, float], EDTDecomposition]


def default_decomposer(graph: nx.Graph, epsilon: float) -> EDTDecomposition:
    """Theorem 1.1 with the Lemma 5.5 (poly(1/ε, log Δ)) routing regime."""
    return edt_decomposition(graph, epsilon, variant="52")


def kpr_decomposer(
    graph: nx.Graph,
    epsilon: float,
    depth: int = 3,
    diameter_slack: float = 4.0,
) -> EDTDecomposition:
    """Cheap decomposer for ablations: plain KPR clusters, leaders = the
    max-degree vertex of each cluster, routing groups the induced
    subgraphs themselves (valid: information gathering inside a
    low-diameter cluster costs O(D · Δ) trivially; used only where the
    benchmark explicitly compares decomposers).  ``depth`` /
    ``diameter_slack`` pass through to KPR so benchmarks can force finer
    granularity."""
    from repro.decomposition.kpr import kpr_low_diameter_decomposition
    from repro.decomposition.types import RoutingGroup

    clustering = kpr_low_diameter_decomposition(
        graph, epsilon, depth=depth, diameter_slack=diameter_slack
    ).relabel()
    leaders: dict = {}
    groups: dict = {}
    for cluster_id, members in clustering.clusters().items():
        sub = graph.subgraph(members)
        leader = max(members, key=lambda v: (sub.degree[v], repr(v)))
        leaders[cluster_id] = leader
        if len(members) > 1:
            groups[cluster_id] = [
                RoutingGroup(
                    nodes=frozenset(sub.nodes),
                    edges=frozenset(frozenset(e) for e in sub.edges),
                    sink=leader,
                )
            ]
    return EDTDecomposition(clustering=clustering, leaders=leaders, groups=groups)
