"""(1 − ε)-approximate maximum matching (Corollary 6.4).

Pipeline: Solomon's matching sparsifier brings Δ down to O(1/ε) in one
round; the decomposition runs with ε* = ε/(2Δ − 1) (any maximal matching
has size ≥ |E|/(2Δ − 1), so OPT ≥ ε*-fraction arguments go through);
every leader solves its cluster by the Blossom algorithm (polynomial —
matching needs no fallback); the union over clusters is a matching of G
because clusters are vertex-disjoint.
"""

from __future__ import annotations

import networkx as nx

from repro.applications._template import ApproxResult, Decomposer, default_decomposer
from repro.applications.exact import maximum_matching_exact
from repro.applications.sparsifiers import matching_sparsifier


def approximate_maximum_matching(
    graph: nx.Graph,
    epsilon: float,
    alpha: int | None = None,
    decomposer: Decomposer | None = None,
    use_sparsifier: bool = True,
) -> ApproxResult:
    """Corollary 6.4 (matching).  ``solution`` is a set of frozenset edges."""
    if not 0 < epsilon < 1:
        raise ValueError("epsilon must lie in (0, 1)")
    if alpha is None:
        from repro.graphs.arboricity import degeneracy

        alpha = max(1, degeneracy(graph))
    working = (
        matching_sparsifier(graph, epsilon / 2.0, alpha)
        if use_sparsifier
        else graph
    )
    delta = max((d for _, d in working.degree), default=1)
    epsilon_star = (epsilon / 2.0) / max(1, 2 * delta - 1)
    decomposer = decomposer or default_decomposer
    decomposition = decomposer(working, epsilon_star)
    matching: set[frozenset] = set()
    total = 0
    for members in decomposition.cluster_members().values():
        sub = working.subgraph(members)
        if sub.number_of_edges() == 0:
            continue
        total += 1
        matching |= maximum_matching_exact(sub)
    _assert_matching(graph, matching)
    return ApproxResult(
        solution=matching,
        value=len(matching),
        decomposition=decomposition,
        exact_clusters=total,
        total_clusters=total,
        construction_rounds=decomposition.construction_rounds,
        routing_rounds=decomposition.routing_rounds,
        extras={"sparsifier_delta": delta, "epsilon_star": epsilon_star},
    )


def _assert_matching(graph: nx.Graph, matching: set[frozenset]) -> None:
    used: set = set()
    for edge in matching:
        u, v = tuple(edge)
        if not graph.has_edge(u, v):
            raise AssertionError(f"matching edge ({u!r}, {v!r}) not in graph")
        if u in used or v in used:
            raise AssertionError(f"vertex reused by matching at ({u!r}, {v!r})")
        used.update((u, v))
