"""Arboricity certification via Barenboim–Elkin (Section 6.2's error
detection).

The property-testing algorithm must detect when Theorem 1.1 is being run
on a graph that is *not* H-minor-free.  One of the three checks is
arboricity: the heavy-stars analysis needs the cluster graph's arboricity
≤ α = 3·α0, and the [BE10] forests-decomposition algorithm certifies this
in O(log n) rounds:

* arboricity ≤ α0  ⇒ every edge gets oriented, nobody rejects;
* arboricity > 3·α0 ⇒ some edge stays unoriented, its endpoints reject.

:func:`certify_arboricity` runs the check on an arbitrary graph (the
caller passes cluster graphs); the returned verdict carries the rejecting
vertex set and the measured peeling rounds (charged at O(D̂) cluster-graph
simulation cost by the caller, per the implementation paragraph of §6.2).
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.graphs.arboricity import barenboim_elkin_partition


@dataclass
class ArboricityCertificate:
    """Outcome of one Barenboim–Elkin certification run."""

    accepted: bool
    rejecting_vertices: set
    oriented_fraction: float
    rounds: int
    alpha0: int

    @property
    def certified_bound(self) -> int:
        """On acceptance, the arboricity is certified ≤ 3·α0."""
        return 3 * self.alpha0


def certify_arboricity(graph: nx.Graph, alpha0: int) -> ArboricityCertificate:
    """Certify arboricity ≤ 3·α0 or reject (see module docstring)."""
    if alpha0 < 1:
        raise ValueError("alpha0 must be >= 1")
    result = barenboim_elkin_partition(graph, alpha0)
    total_edges = max(1, graph.number_of_edges())
    oriented = len(result["orientation"])
    return ArboricityCertificate(
        accepted=not result["rejecting"],
        rejecting_vertices=set(result["rejecting"]),
        oriented_fraction=oriented / total_edges,
        rounds=result["rounds"],
        alpha0=alpha0,
    )
