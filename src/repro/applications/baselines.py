"""Sequential baselines the approximation benchmarks compare against.

These are the standard greedy algorithms: they are *not* from the paper —
they provide the quality floor (greedy MIS on planar graphs, maximal
matching's ½-guarantee, matching-based 2-approximate VC, BFS-parity max
cut) that the corollaries' (1 ± ε) guarantees are measured against.
All are deterministic (id-order tie-breaking).
"""

from __future__ import annotations

import networkx as nx


def greedy_maximal_independent_set(graph: nx.Graph) -> set:
    """Min-degree greedy MIS (the classic planar-graph heuristic)."""
    remaining = {v: set(graph.neighbors(v)) for v in graph.nodes}
    alive = set(graph.nodes)
    independent: set = set()
    while alive:
        v = min(alive, key=lambda u: (len(remaining[u] & alive), repr(u)))
        independent.add(v)
        dead = (remaining[v] & alive) | {v}
        alive -= dead
    return independent


def greedy_matching(graph: nx.Graph) -> set[frozenset]:
    """Greedy maximal matching in id order: ≥ ½ of the maximum."""
    used: set = set()
    matching: set[frozenset] = set()
    for u, v in sorted(graph.edges, key=lambda e: (repr(e[0]), repr(e[1]))):
        if u not in used and v not in used:
            matching.add(frozenset((u, v)))
            used.update((u, v))
    return matching


def greedy_vertex_cover(graph: nx.Graph) -> set:
    """Matching-based 2-approximate vertex cover."""
    cover: set = set()
    for edge in greedy_matching(graph):
        cover.update(edge)
    return cover


def local_search_max_cut(graph: nx.Graph) -> tuple[set, int]:
    """The plain 1-flip local-search baseline (≥ m/2 guarantee)."""
    from repro.applications.exact import max_cut_local_search

    return max_cut_local_search(graph)
