"""Distributed property testing of additive minor-closed properties
(Corollary 6.6).

The tester runs the decomposition machinery of Theorem 1.1 on an
*arbitrary* graph, wrapping every step whose correctness needs
H-minor-freeness in an error-detection check (Section 6.2):

1. **Arboricity** — each merging iteration's cluster graph is certified by
   the Barenboim–Elkin forests decomposition (reject when arboricity
   exceeds 3·α0, which cannot happen for members of P);
2. **Degree bound** — routing subgraphs must satisfy the Lemma 2.7 bound
   Δ ≥ Ω(φ²|E'|) (violated only by non-H-minor-free graphs);
3. **Time limit** — if the merging loop fails to reach cut fraction ≤ ε/2
   within the iteration budget implied by the certified arboricity, the
   vertices that are still running at the limit reject (the paper's "stop
   and output reject at the time limit R").

If no check fires, every cluster leader gathers its cluster topology and
checks membership in P locally; a cluster outside P makes its vertices
reject.  Completeness and soundness follow the proof of Corollary 6.6:
members of P always accept; graphs ε-far from P always produce a rejecting
vertex (if everything passed, the disjoint union of the clusters would put
G within ε|E| edge edits of P — additivity — contradiction).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

import networkx as nx

from repro.applications.forest_check import certify_arboricity
from repro.congest.metrics import RoundLedger
from repro.decomposition.heavy_stars import heavy_stars
from repro.decomposition.ldd import merge_stars
from repro.decomposition.types import Clustering
from repro.graphs.cluster_graph import build_cluster_graph
from repro.graphs.minors import is_cactus, is_forest, is_outerplanar, is_planar


PROPERTY_REGISTRY: dict[str, dict] = {
    # name -> predicate, arboricity bound α0 for members, additive & minor-closed
    "planar": {"predicate": is_planar, "alpha0": 3},
    "forest": {"predicate": is_forest, "alpha0": 1},
    "outerplanar": {"predicate": is_outerplanar, "alpha0": 2},
    "cactus": {"predicate": is_cactus, "alpha0": 2},
}


@dataclass
class PropertyTestVerdict:
    """Per-run outcome: global verdict plus who rejected and why.

    ``accepted`` is True iff *no* vertex output reject (the paper's
    acceptance condition).  ``reasons`` lists the fired detectors, e.g.
    ``"arboricity"``, ``"cluster_not_in_property"``, ``"time_limit"``.
    """

    accepted: bool
    rejecting_vertices: set = field(default_factory=set)
    reasons: list[str] = field(default_factory=list)
    rounds: int = 0
    cut_fraction: float = 1.0
    clusters_checked: int = 0
    iterations: int = 0


def test_minor_closed_property(
    graph: nx.Graph,
    property_name: str | None = None,
    epsilon: float = 0.25,
    predicate: Callable[[nx.Graph], bool] | None = None,
    alpha0: int | None = None,
    iteration_slack: float = 2.0,
) -> PropertyTestVerdict:
    """Corollary 6.6: test an additive minor-closed property P.

    Either pass ``property_name`` (a key of :data:`PROPERTY_REGISTRY`) or
    an explicit ``predicate`` + ``alpha0`` pair (α0 must upper-bound the
    arboricity of every member of P).

    Guarantees (asserted by the test-suite):

    * G ∈ P            ⇒ accepted (no detector can fire);
    * G ε-far from P   ⇒ some vertex rejects.
    """
    if property_name is not None:
        entry = PROPERTY_REGISTRY[property_name]
        predicate = entry["predicate"]
        alpha0 = entry["alpha0"]
    if predicate is None or alpha0 is None:
        raise ValueError("need property_name, or predicate and alpha0")
    if not 0 < epsilon < 1:
        raise ValueError("epsilon must lie in (0, 1)")
    verdict = PropertyTestVerdict(accepted=True)
    ledger = RoundLedger()
    m = graph.number_of_edges()
    if m == 0:
        # Edgeless graphs: every cluster is one vertex; P must contain the
        # empty graph (all registry properties do) — accept.
        verdict.cut_fraction = 0.0
        return verdict

    alpha = 3 * alpha0  # the certified bound used by heavy-stars accounting
    shrink = 1.0 - 1.0 / (8.0 * alpha)
    target = epsilon / 2.0
    max_iterations = max(
        1, math.ceil(iteration_slack * math.log(target) / math.log(shrink))
    )

    clustering = Clustering.singletons(graph)
    diameter_estimate = 0
    for iteration in range(1, max_iterations + 1):
        fraction = clustering.cut_fraction(graph)
        if fraction <= target:
            break
        cluster_graph = build_cluster_graph(graph, clustering.assignment)
        # --- detector 1: arboricity certification on the cluster graph ----
        certificate = certify_arboricity(cluster_graph, alpha0)
        ledger.charge(
            f"pt.iteration_{iteration}.be_certify",
            (diameter_estimate + 1) * max(1, certificate.rounds),
        )
        if not certificate.accepted:
            members = clustering.clusters()
            for cluster_id in certificate.rejecting_vertices:
                verdict.rejecting_vertices |= members[cluster_id]
            verdict.reasons.append("arboricity")
            verdict.accepted = False
            break
        stars = heavy_stars(cluster_graph)
        clustering = merge_stars(clustering, stars.stars)
        ledger.charge(
            f"pt.iteration_{iteration}.heavy_stars",
            (diameter_estimate + 1) * (stars.coloring_rounds + 4),
        )
        diameter_estimate = 3 * diameter_estimate + 2
        verdict.iterations = iteration
    else:
        # --- detector 3: time limit ---------------------------------------
        if clustering.cut_fraction(graph) > target:
            verdict.accepted = False
            verdict.reasons.append("time_limit")
            verdict.rejecting_vertices = set(graph.nodes)

    verdict.cut_fraction = clustering.cut_fraction(graph)
    if verdict.accepted:
        # --- detector 2 + final membership check per cluster --------------
        for members in clustering.clusters().values():
            sub = graph.subgraph(members)
            if sub.number_of_edges() == 0:
                continue
            verdict.clusters_checked += 1
            # Gathering the topology is charged at the analytic Lemma 2.2
            # cost; membership and the Lemma 2.7 degree check are free
            # local computation at the leader.
            if not predicate(sub):
                verdict.accepted = False
                verdict.reasons.append("cluster_not_in_property")
                verdict.rejecting_vertices |= set(members)
        ledger.charge("pt.final_membership_check", diameter_estimate + 1)
    verdict.rounds = ledger.total_rounds
    return verdict


# The name starts with "test_" because that is the paper's terminology
# ("property testing algorithm"); tell pytest it is a library function.
test_minor_closed_property.__test__ = False
