"""Solomon's bounded-degree sparsifiers [Sol18] (quoted in Section 6.1).

One-round deterministic reductions from (1 ± ε)-approximation in a
bounded-arboricity graph to the same problem in a subgraph of maximum
degree O(1/ε):

* minimum vertex cover:  with d = O(α/ε), any (1+ε)-approximate VC C of
  G_low = G[V ∖ V_high] makes V_high ∪ C a (1+O(ε))-approximate VC of G,
  where V_high = {v : deg(v) ≥ d};
* maximum matching: every vertex marks min(deg(v), d) incident edges; G_d
  keeps the doubly marked ones — a (1−ε) matching of G_d is (1−O(ε)) in G;
* maximum independent set: with d = O(α²/ε), a (1−ε)-approximate MIS of
  G_low is (1−O(ε))-approximate in G.

All functions return a *new* graph (plus the high-degree set where
relevant) and never mutate the input.
"""

from __future__ import annotations

import math

import networkx as nx


def vertex_cover_sparsifier(
    graph: nx.Graph, epsilon: float, alpha: int, constant: float = 2.0
) -> tuple[nx.Graph, set]:
    """(G_low, V_high) with threshold d = ⌈c·α/ε⌉.

    V_high joins the cover outright; the approximation problem moves to
    G_low, whose maximum degree is < d = O(1/ε) for constant α.
    """
    if not 0 < epsilon <= 1:
        raise ValueError("epsilon must lie in (0, 1]")
    d = max(1, math.ceil(constant * alpha / epsilon))
    high = {v for v in graph.nodes if graph.degree[v] >= d}
    low_graph = graph.subgraph(set(graph.nodes) - high).copy()
    return low_graph, high


def mis_sparsifier(
    graph: nx.Graph, epsilon: float, alpha: int, constant: float = 2.0
) -> nx.Graph:
    """G_low with threshold d = ⌈c·α²/ε⌉ (high-degree vertices dropped)."""
    if not 0 < epsilon <= 1:
        raise ValueError("epsilon must lie in (0, 1]")
    d = max(1, math.ceil(constant * alpha * alpha / epsilon))
    low = {v for v in graph.nodes if graph.degree[v] < d}
    return graph.subgraph(low).copy()


def matching_sparsifier(
    graph: nx.Graph, epsilon: float, alpha: int, constant: float = 2.0
) -> nx.Graph:
    """G_d: keep edges marked by both endpoints; Δ(G_d) ≤ d = ⌈c·α/ε⌉.

    Marking is deterministic: each vertex marks its d incident edges with
    the smallest neighbour ids (any rule works for the guarantee).
    """
    if not 0 < epsilon <= 1:
        raise ValueError("epsilon must lie in (0, 1]")
    d = max(1, math.ceil(constant * alpha / epsilon))
    marked: dict = {}
    for v in graph.nodes:
        neighbors = sorted(graph.neighbors(v), key=repr)[:d]
        marked[v] = set(neighbors)
    sparsifier = nx.Graph()
    sparsifier.add_nodes_from(graph.nodes)
    for u, v in graph.edges:
        if v in marked[u] and u in marked[v]:
            sparsifier.add_edge(u, v)
    return sparsifier
