"""(1 + ε)-approximate minimum vertex cover (Corollary 6.4).

Pipeline: Solomon's VC sparsifier moves every vertex of degree ≥ O(α/ε)
into the cover outright; decompose the low-degree remainder with
ε* = ε/(2Δ − 1); leaders solve their clusters exactly (minimum VC =
complement of maximum independent set); one endpoint of every
inter-cluster edge joins the cover.  Any vertex cover has size ≥ |E|/Δ,
so the ≤ ε*|E| patched endpoints cost only an ε factor.
"""

from __future__ import annotations

import networkx as nx

from repro.applications._template import ApproxResult, Decomposer, default_decomposer
from repro.applications.baselines import greedy_vertex_cover
from repro.applications.exact import ExactBudgetExceeded, minimum_vertex_cover_exact
from repro.applications.sparsifiers import vertex_cover_sparsifier


def approximate_minimum_vertex_cover(
    graph: nx.Graph,
    epsilon: float,
    alpha: int | None = None,
    decomposer: Decomposer | None = None,
    use_sparsifier: bool = True,
    cluster_budget: int = 500_000,
) -> ApproxResult:
    """Corollary 6.4 (vertex cover).  ``solution`` is the cover vertex set.

    Clusters whose exact MIS search exceeds ``cluster_budget`` fall back
    to the greedy 2-approximation (counted in ``exact_clusters``); the
    global guarantee then degrades gracefully and is reported as measured.
    """
    if not 0 < epsilon < 1:
        raise ValueError("epsilon must lie in (0, 1)")
    if alpha is None:
        from repro.graphs.arboricity import degeneracy

        alpha = max(1, degeneracy(graph))
    if use_sparsifier:
        working, high = vertex_cover_sparsifier(graph, epsilon / 2.0, alpha)
    else:
        working, high = graph, set()
    delta = max((d for _, d in working.degree), default=1)
    epsilon_star = (epsilon / 2.0) / max(1, 2 * delta - 1)
    decomposer = decomposer or default_decomposer
    decomposition = decomposer(working, epsilon_star)
    cover: set = set(high)
    exact_count, total = 0, 0
    for members in decomposition.cluster_members().values():
        sub = working.subgraph(members)
        if sub.number_of_edges() == 0:
            continue
        total += 1
        try:
            cover |= minimum_vertex_cover_exact(sub, budget=cluster_budget)
            exact_count += 1
        except ExactBudgetExceeded:
            cover |= greedy_vertex_cover(sub)
    # Patch the inter-cluster edges: add the endpoint with smaller id.
    for u, v in decomposition.clustering.inter_cluster_edges(working):
        if u not in cover and v not in cover:
            cover.add(min(u, v, key=repr))
    _assert_cover(graph, cover)
    return ApproxResult(
        solution=cover,
        value=len(cover),
        decomposition=decomposition,
        exact_clusters=exact_count,
        total_clusters=total,
        construction_rounds=decomposition.construction_rounds,
        routing_rounds=decomposition.routing_rounds,
        extras={"high_degree": len(high), "epsilon_star": epsilon_star},
    )


def _assert_cover(graph: nx.Graph, cover: set) -> None:
    for u, v in graph.edges:
        if u not in cover and v not in cover:
            raise AssertionError(f"edge ({u!r}, {v!r}) uncovered")
