"""Cluster graphs of vertex partitions (Section 4.1).

Given a partition of V, the *cluster graph* has one node per cluster, an
edge between two clusters iff some G-edge crosses them, and edge weight =
the number of crossing G-edges.  The heavy-stars algorithm runs on this
graph; its arboricity is bounded because H-minor-free classes are closed
under contraction (Remark items 1 and 3).
"""

from __future__ import annotations

from typing import Hashable, Mapping

import networkx as nx


def build_cluster_graph(
    graph: nx.Graph, assignment: Mapping[Hashable, Hashable]
) -> nx.Graph:
    """Weighted cluster graph of the partition ``assignment`` (v → cluster id).

    Every vertex must be assigned.  Edge attribute ``weight`` counts the
    crossing edges; node attribute ``members`` is a frozenset of the
    cluster's vertices.
    """
    missing = [v for v in graph.nodes if v not in assignment]
    if missing:
        raise ValueError(f"unassigned vertices: {missing[:5]}")
    cluster_graph = nx.Graph()
    members: dict[Hashable, set] = {}
    for v, cluster in assignment.items():
        members.setdefault(cluster, set()).add(v)
    for cluster, vertices in members.items():
        cluster_graph.add_node(cluster, members=frozenset(vertices))
    for u, v in graph.edges:
        cu, cv = assignment[u], assignment[v]
        if cu == cv:
            continue
        if cluster_graph.has_edge(cu, cv):
            cluster_graph[cu][cv]["weight"] += 1
        else:
            cluster_graph.add_edge(cu, cv, weight=1)
    return cluster_graph


def contract_partition(
    graph: nx.Graph, assignment: Mapping[Hashable, Hashable]
) -> nx.Graph:
    """Simple (unweighted) contraction of the partition — a minor of G.

    Used by tests to check closure properties: the contraction of an
    H-minor-free graph is H-minor-free provided each cluster is connected.
    """
    return build_cluster_graph(graph, assignment)


def inter_cluster_edge_count(
    graph: nx.Graph, assignment: Mapping[Hashable, Hashable]
) -> int:
    """Number of G-edges whose endpoints lie in different clusters."""
    return sum(1 for u, v in graph.edges if assignment[u] != assignment[v])
