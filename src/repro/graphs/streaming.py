"""Streaming edge-block generators for million-node graph families.

The classic generators in :mod:`repro.graphs.generators` build
``networkx`` graphs — fine up to ~10^5 vertices, prohibitive beyond
(every vertex and edge is a Python object).  The functions here instead
yield **edge blocks**: ``(k, 2)`` int64 numpy arrays of directed
candidate edges.  They are consumed by
:func:`repro.congest.runtime.compile.compile_edge_stream`, which
deduplicates, symmetrizes, and narrows them into a CSR topology without
ever materializing the full edge list in Python objects.

Determinism contract
--------------------
Every family draws from counter-based ``numpy.random.Philox`` streams
keyed by ``(derive_stream_key(seed, [family, params…]), quantum)``
where ``quantum`` indexes a **fixed internal chunk** of ``2**16``
candidate edges (:data:`QUANTUM`).  The public ``block_edges`` argument
only re-chunks the already-determined stream, so::

    concat(stream_powerlaw_edges(n, m, seed=s, block_edges=b1))
    == concat(stream_powerlaw_edges(n, m, seed=s, block_edges=b2))

for any block sizes ``b1``/``b2`` — the property the scale tests pin.
Keys route through the shared Philox key-derivation in
:mod:`repro.congest.runtime.rng`, so graph streams, vertex RNG planes,
and fault schedules all live in one keyed-stream discipline.

Blocks are *candidates*: they may contain self-loops and duplicates
(power-law and R-MAT sample with replacement); the compile pass drops
both.  Only ``stream_random_regular_edges`` holds O(n·degree) numpy
scratch (one stub permutation); the other families are O(block).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

#: Fixed internal quantum (candidate edges per Philox counter step).
#: Part of the determinism contract — changing it changes every stream.
QUANTUM = 1 << 16

# Family tags folded into the stream key (ints: ``derive_stream_key``
# hashes strings via ``hash()``, which PYTHONHASHSEED would randomize).
_POWERLAW_TAG = 1
_RMAT_TAG = 2
_REGULAR_TAG = 3


def _stream_key(seed: int, scope: list) -> int:
    # Lazy import: repro.congest.runtime imports repro.graphs (cache
    # module), so the reverse edge must resolve at call time.
    from repro.congest.runtime.rng import derive_stream_key

    return derive_stream_key(seed, scope)


def _quantum_generator(key: int, quantum: int) -> np.random.Generator:
    """One Philox stream per (family key, quantum index)."""
    return np.random.Generator(np.random.Philox(key=[key, quantum]))


def _reblock(
    quanta: Iterator[np.ndarray], block_edges: int
) -> Iterator[np.ndarray]:
    """Re-chunk a fixed-quantum stream into ``block_edges``-row blocks.

    Pure slicing/concatenation of already-drawn arrays — block size can
    never influence the drawn values.
    """
    if block_edges <= 0:
        raise ValueError("block_edges must be positive")
    pending: list[np.ndarray] = []
    held = 0
    for quantum in quanta:
        pending.append(quantum)
        held += len(quantum)
        while held >= block_edges:
            buffer = pending[0] if len(pending) == 1 else np.concatenate(pending)
            yield buffer[:block_edges]
            rest = buffer[block_edges:]
            pending = [rest] if len(rest) else []
            held = len(rest)
    if held:
        yield pending[0] if len(pending) == 1 else np.concatenate(pending)


def _quantum_sizes(total: int) -> Iterator[tuple[int, int]]:
    """Yield ``(quantum_index, count)`` covering ``total`` candidates."""
    full, tail = divmod(total, QUANTUM)
    for qi in range(full):
        yield qi, QUANTUM
    if tail:
        yield full, tail


def stream_powerlaw_edges(
    n: int,
    m: int,
    *,
    gamma: float = 2.5,
    seed: int = 0,
    block_edges: int = 1 << 17,
) -> Iterator[np.ndarray]:
    """Chung–Lu power-law graph stream: ``m`` candidate edges on ``n``
    vertices with expected degree of vertex ``i`` proportional to
    ``(i + 1) ** (-1 / (gamma - 1))`` (degree exponent ``gamma``).

    Endpoints are drawn independently from the weight distribution
    (inverse-CDF via ``searchsorted``), so the symmetrized simple graph
    is the standard Chung–Lu model: heavy-tailed degrees, possibly
    disconnected.  Yields ``(k, 2)`` int64 blocks.
    """
    if n < 1:
        raise ValueError("n must be positive")
    if m < 0:
        raise ValueError("m must be non-negative")
    if gamma <= 1.0:
        raise ValueError("gamma must exceed 1 (degree exponent)")
    key = _stream_key(seed, [_POWERLAW_TAG, n, m, hash(float(gamma))])
    weights = np.arange(1, n + 1, dtype=np.float64) ** (-1.0 / (gamma - 1.0))
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]

    def quanta() -> Iterator[np.ndarray]:
        for qi, count in _quantum_sizes(m):
            generator = _quantum_generator(key, qi)
            uniforms = generator.random(2 * count)
            block = np.empty((count, 2), dtype=np.int64)
            block[:, 0] = np.searchsorted(cdf, uniforms[:count], side="right")
            block[:, 1] = np.searchsorted(cdf, uniforms[count:], side="right")
            yield block

    return _reblock(quanta(), block_edges)


def stream_rmat_edges(
    scale: int,
    m: int,
    *,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 0,
    block_edges: int = 1 << 17,
) -> Iterator[np.ndarray]:
    """R-MAT graph stream on ``n = 2**scale`` vertices: each candidate
    edge picks one adjacency-matrix quadrant per bit level with
    probabilities ``(a, b, c, d = 1 - a - b - c)`` — one uniform per
    level decides both endpoint bits jointly (the classic Kronecker
    recursion, no noise smoothing).  Yields ``(k, 2)`` int64 blocks.
    """
    if scale < 0:
        raise ValueError("scale must be non-negative")
    if m < 0:
        raise ValueError("m must be non-negative")
    d = 1.0 - a - b - c
    if min(a, b, c, d) < 0.0:
        raise ValueError("quadrant probabilities must be non-negative")
    key = _stream_key(
        seed, [_RMAT_TAG, scale, m, hash(float(a)), hash(float(b)), hash(float(c))]
    )

    def quanta() -> Iterator[np.ndarray]:
        for qi, count in _quantum_sizes(m):
            generator = _quantum_generator(key, qi)
            u = np.zeros(count, dtype=np.int64)
            v = np.zeros(count, dtype=np.int64)
            for _level in range(scale):
                r = generator.random(count)
                # quadrant: [0,a) → (0,0), [a,a+b) → (0,1),
                #           [a+b,a+b+c) → (1,0), rest → (1,1)
                u_bit = r >= a + b
                v_bit = ((r >= a) & (r < a + b)) | (r >= a + b + c)
                u = (u << 1) | u_bit
                v = (v << 1) | v_bit
            yield np.stack([u, v], axis=1)

    return _reblock(quanta(), block_edges)


def stream_random_regular_edges(
    n: int,
    degree: int,
    *,
    seed: int = 0,
    block_edges: int = 1 << 17,
) -> Iterator[np.ndarray]:
    """Pairing-model random regular graph stream: a Philox permutation
    of the ``n * degree`` stubs, paired consecutively.  Yields ``(k, 2)``
    int64 blocks.

    The symmetrized simple graph is *near*-regular: the pairing model
    produces O(degree^2) expected self-loops/duplicate pairs which the
    compile pass drops (the classic configuration-model construction;
    exact regularity would need rejection, which doesn't stream).  This
    is the one family holding O(n · degree) numpy scratch — a single
    int64 permutation, ~32 MB at n = 10^6, degree = 4 — but still zero
    per-edge Python objects.
    """
    if n < 1:
        raise ValueError("n must be positive")
    if degree < 0 or degree >= n:
        raise ValueError("degree must be in [0, n)")
    if (n * degree) % 2:
        raise ValueError("n * degree must be even")
    key = _stream_key(seed, [_REGULAR_TAG, n, degree])

    def quanta() -> Iterator[np.ndarray]:
        generator = _quantum_generator(key, 0)
        stubs = generator.permutation(n * degree) // degree
        yield stubs.reshape(-1, 2)

    return _reblock(quanta(), block_edges)


def materialize_edges(blocks: Iterator[np.ndarray]) -> np.ndarray:
    """Concatenate an edge-block stream into one ``(total, 2)`` int64
    array — test/inspection helper; defeats the point at 10^6 nodes."""
    parts = [np.asarray(block, dtype=np.int64).reshape(-1, 2) for block in blocks]
    if not parts:
        return np.empty((0, 2), dtype=np.int64)
    return parts[0] if len(parts) == 1 else np.concatenate(parts)
