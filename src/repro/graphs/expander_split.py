"""The expander split G⋄ of Section 2.

Construction (verbatim from the paper):

* for each vertex v of G, create a deg(v)-vertex gadget X_v with
  Δ(X_v) = Θ(1) and Φ(X_v) = Θ(1);
* each v orders its incident edges arbitrarily (we use a fixed
  deterministic order); for each edge e = {u, v}, connect the r_u(e)-th
  vertex of X_u to the r_v(e)-th vertex of X_v.

The property used downstream is that Ψ(G⋄) = Θ(Φ(G)) [CS20, Lemma C.2],
and that G⋄ can be simulated within G at no extra cost: every split vertex
(v, i) is simulated by v, and a G⋄-edge is either internal to some X_v
(free local computation) or corresponds 1-to-1 with a G-edge.

``constant_degree_expander(k)`` builds the gadget: for k ≤ 4 a clique,
otherwise a cycle plus the two "doubling" chord families i→2i and i→2i+1
(mod k), a standard constant-degree construction with constant expansion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

import networkx as nx


def constant_degree_expander(k: int) -> nx.Graph:
    """A connected k-vertex graph with Δ ≤ 8 and Φ = Θ(1).

    Vertices are 0..k-1.  For k ≤ 4 a clique.  For larger k: cycle edges
    i ~ i+1 plus chords i ~ 2i (mod k) and i ~ 2i+1 (mod k); the doubling
    map's expansion is the classic basis of constant-degree expander
    families.  Self-loops are dropped; the cycle keeps it connected.
    """
    if k <= 0:
        raise ValueError("gadget size must be positive")
    if k <= 4:
        return nx.complete_graph(k)
    g = nx.cycle_graph(k)
    for i in range(k):
        for target in ((2 * i) % k, (2 * i + 1) % k):
            if target != i:
                g.add_edge(i, target)
    return g


@dataclass
class ExpanderSplit:
    """The expander split G⋄ of a graph G plus the simulation maps.

    Attributes
    ----------
    split:
        The split graph; vertices are pairs ``(v, i)`` with v ∈ V(G) and
        ``0 ≤ i < max(deg_G(v), 1)``.
    port:
        ``{(u, v): ((u, r_u), (v, r_v))}`` — for every G-edge, the split
        endpoints implementing it.  Key edges are stored in both
        orientations for convenience.
    owner:
        ``{(v, i): v}`` — which real vertex simulates a split vertex.
    """

    graph: nx.Graph
    split: nx.Graph = field(init=False)
    port: dict = field(init=False)
    owner: dict = field(init=False)

    def __post_init__(self) -> None:
        g = self.graph
        split = nx.Graph()
        self.port = {}
        self.owner = {}
        rank: dict[Hashable, dict[Hashable, int]] = {}
        for v in g.nodes:
            neighbors = sorted(g.neighbors(v), key=repr)
            rank[v] = {u: i for i, u in enumerate(neighbors)}
            gadget = constant_degree_expander(max(g.degree[v], 1))
            for i in gadget.nodes:
                split.add_node((v, i))
                self.owner[(v, i)] = v
            for i, j in gadget.edges:
                split.add_edge((v, i), (v, j))
        for u, v in g.edges:
            a = (u, rank[u][v])
            b = (v, rank[v][u])
            split.add_edge(a, b)
            self.port[(u, v)] = (a, b)
            self.port[(v, u)] = (b, a)
        self.split = split

    def gadget_vertices(self, v: Hashable) -> list:
        """The vertices of X_v (one per incident G-edge; one if isolated)."""
        return [(v, i) for i in range(max(self.graph.degree[v], 1))]

    @property
    def n_split(self) -> int:
        return self.split.number_of_nodes()
