"""Memoized per-graph statistics: degrees, volumes, cuts, degeneracy.

The refinement loops in :mod:`repro.decomposition.edt` and
:mod:`repro.decomposition.overlap_expander`, and the conductance helpers in
:mod:`repro.graphs.conductance`, repeatedly need the same quantities —
``deg(v)``, ``vol(S)``, ``|∂S|``, total volume, degeneracy — and the seed
recomputed each from scratch inside the loop (full-edge scans for cuts,
min-degree peeling for every degeneracy query).  :class:`GraphStats`
computes them once per graph and serves them from a cache:

* degrees and total volume are materialized at construction (O(n));
* ``cut_size(S)`` iterates only edges incident to S — O(vol S), not O(m) —
  and memoizes results for ``frozenset`` arguments (the decomposition
  code's member sets are frozensets, so repeated refinement queries hit);
* ``degeneracy`` is computed lazily once.

Instances are cached per graph object (weakly, so graphs can still be
garbage collected) via :meth:`GraphStats.for_graph`, through the shared
:class:`~repro.graphs.cache.PerGraphCache` protocol — the same staleness
probe (n, m, and the degree table, O(n)) that guards the CONGEST
engine's ``CompiledTopology`` cache, so the two can never disagree about
whether a graph changed.  The probe cannot see a *degree-preserving*
rewire (e.g. ``nx.double_edge_swap``) — call :meth:`GraphStats.invalidate`
(which drops **all** registered per-graph caches) after one, or use a
fresh graph copy.  Graphs mutated *between* ``for_graph`` and a query on
the returned instance are the caller's responsibility — hold stats only
across read-only phases.
"""

from __future__ import annotations

import weakref
from typing import Hashable, Iterable

import networkx as nx

from repro.graphs.cache import PerGraphCache, invalidate_graph_caches

_CUT_CACHE_LIMIT = 4096


class GraphStats:
    """Cached structural statistics of one ``networkx.Graph``."""

    __slots__ = (
        "n",
        "m",
        "degree",
        "total_volume",
        "_adj",
        "_graph_ref",
        "_degeneracy",
        "_cut_cache",
        "__weakref__",
    )

    def __init__(self, graph: nx.Graph) -> None:
        self.n = graph.number_of_nodes()
        self.m = graph.number_of_edges()
        # graph.adj wraps graph._adj; holding it does not keep the graph
        # object itself alive (the weak cache stays collectible).
        self._adj = graph.adj
        # dict(graph.degree) keeps networkx semantics (self-loops count 2).
        self.degree = dict(graph.degree)
        self.total_volume = sum(self.degree.values())
        self._graph_ref = weakref.ref(graph)
        self._degeneracy: int | None = None
        self._cut_cache: dict[frozenset, int] = {}

    # ------------------------------------------------------------------
    @classmethod
    def for_graph(cls, graph: nx.Graph) -> "GraphStats":
        """The memoized stats for ``graph``.

        Rebuilt whenever n, m, or any vertex degree changed; a
        degree-preserving rewire is invisible to this check (see the
        module docstring) and needs :meth:`invalidate`.
        """
        return _stats_cache.get(graph)

    @classmethod
    def invalidate(cls, graph: nx.Graph) -> None:
        """Drop **every** registered per-graph cache entry for ``graph``
        (after an in-place mutation the staleness check cannot detect).
        Clearing all caches at once keeps the engine's compiled topology
        and these stats in sync."""
        invalidate_graph_caches(graph)

    # ------------------------------------------------------------------
    def volume(self, vertices: Iterable[Hashable]) -> int:
        """vol(S) = Σ_{v∈S} deg(v) from the cached degree table."""
        degree = self.degree
        return sum(degree[v] for v in vertices)

    def cut_size(self, vertices: Iterable[Hashable]) -> int:
        """|∂S| by iterating only S's incident edges — O(vol S).

        ``frozenset`` arguments are memoized (bounded cache), so the
        refinement loops that re-query the same member sets pay once.
        """
        if isinstance(vertices, frozenset):
            cached = self._cut_cache.get(vertices)
            if cached is not None:
                return cached
            value = self._cut_count(vertices)
            if len(self._cut_cache) < _CUT_CACHE_LIMIT:
                self._cut_cache[vertices] = value
            return value
        inside = vertices if isinstance(vertices, set) else set(vertices)
        return self._cut_count(inside)

    def _cut_count(self, inside) -> int:
        adj = self._adj
        total = 0
        for u in inside:
            if u not in adj:
                continue
            for v in adj[u]:
                if v not in inside:
                    total += 1
        return total

    @property
    def degeneracy(self) -> int:
        """d(G), computed lazily once via the exact peeling algorithm."""
        if self._degeneracy is None:
            from repro.graphs.arboricity import degeneracy as _degeneracy

            graph = self._graph_ref()
            if graph is None:  # graph collected: rebuild from adjacency
                graph = nx.Graph()
                graph.add_nodes_from(self.degree)
                for u in self._adj:
                    for v in self._adj[u]:
                        graph.add_edge(u, v)
            self._degeneracy = _degeneracy(graph)
        return self._degeneracy


def _stats_fresh(stats: GraphStats, graph: nx.Graph) -> bool:
    """Degree-table staleness probe: one pass over the degree view covers
    n, m, and per-vertex degrees (degrees determine 2m)."""
    if stats.n != len(graph):
        return False
    degree = stats.degree
    for v, d in graph.degree:
        if degree.get(v, -1) != d:
            return False
    return True


_stats_cache = PerGraphCache(GraphStats, _stats_fresh, name="graph-stats")
