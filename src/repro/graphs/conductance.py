"""Conductance, sparsity, and expansion certificates (Section 2 definitions).

Definitions follow the paper exactly:

* ``vol(S)`` is measured in the *underlying* graph G, not the induced
  subgraph (important in Lemma 4.5's analysis);
* ``Φ(S) = |∂S| / min(vol S, vol V∖S)``;
* ``Ψ(S) = |∂S| / min(|S|, |V∖S|)``;
* ``Φ(G) = min over S`` — exact by subset enumeration for small graphs,
  sandwiched by the Cheeger inequality (λ2/2 ≤ Φ ≤ √(2 λ2) for the
  normalized Laplacian) for larger ones.

Also included: the mixing-time bound τ = O(φ⁻² log |V|) used by the
random-walk router, and the minor-free degree lower bound of Lemma 2.7
(Δ = Ω(φ² |V|)).
"""

from __future__ import annotations

import itertools
import math
from typing import Hashable, Iterable

import networkx as nx
import numpy as np

from repro.graphs.stats import GraphStats


def volume(graph: nx.Graph, vertices: Iterable[Hashable]) -> int:
    """vol(S) = Σ_{v∈S} deg_G(v), degrees in the underlying graph."""
    degree = graph.degree
    return sum(degree[v] for v in vertices)


def cut_size(graph: nx.Graph, vertices: Iterable[Hashable]) -> int:
    """|∂S| = number of edges with exactly one endpoint in S.

    Delegates to :class:`~repro.graphs.stats.GraphStats`: iterates only
    edges incident to S — O(vol S), not O(m) — and memoizes results for
    ``frozenset`` arguments, so repeated cut queries in refinement loops
    don't rescan the whole edge set.
    """
    return GraphStats.for_graph(graph).cut_size(vertices)


def conductance_of_set(graph: nx.Graph, vertices: Iterable[Hashable]) -> float:
    """Φ(S) per the paper; requires ∅ ⊂ S ⊂ V.

    Uses the per-graph :class:`~repro.graphs.stats.GraphStats` cache: the
    degree table and total volume are computed once per graph, so
    vol(V∖S) is ``total − vol(S)`` instead of a second pass over V∖S.
    """
    stats = GraphStats.for_graph(graph)
    inside = set(vertices)
    if not inside:
        raise ValueError("conductance needs a proper nonempty subset")
    vol_inside = stats.volume(inside)
    if len(inside) >= stats.n:
        raise ValueError("conductance needs a proper nonempty subset")
    denominator = min(vol_inside, stats.total_volume - vol_inside)
    if denominator == 0:
        return math.inf
    return stats.cut_size(inside) / denominator


def sparsity_of_set(graph: nx.Graph, vertices: Iterable[Hashable]) -> float:
    """Ψ(S) (edge expansion) per the paper; requires ∅ ⊂ S ⊂ V."""
    stats = GraphStats.for_graph(graph)
    inside = set(vertices)
    if not inside:
        raise ValueError("sparsity needs a proper nonempty subset")
    if len(inside) >= stats.n:
        raise ValueError("sparsity needs a proper nonempty subset")
    return stats.cut_size(inside) / min(len(inside), stats.n - len(inside))


def exact_conductance(graph: nx.Graph, max_nodes: int = 18) -> float:
    """Exact Φ(G) by enumerating all 2^(n-1) − 1 cuts.

    Guarded by ``max_nodes`` so accidental use on large graphs fails
    loudly.  Disconnected graphs have conductance 0.
    """
    n = graph.number_of_nodes()
    if n < 2:
        return math.inf
    if n > max_nodes:
        raise ValueError(f"exact conductance limited to {max_nodes} nodes")
    if not nx.is_connected(graph):
        return 0.0
    nodes = list(graph.nodes)
    anchor, rest = nodes[0], nodes[1:]
    best = math.inf
    for r in range(len(rest) + 1):
        for combo in itertools.combinations(rest, r):
            subset = {anchor, *combo}
            if len(subset) == n:
                continue
            best = min(best, conductance_of_set(graph, subset))
    return best


def spectral_conductance_bounds(graph: nx.Graph) -> tuple[float, float]:
    """Cheeger sandwich (lower, upper) for Φ(G) via the normalized Laplacian.

    λ2/2 ≤ Φ(G) ≤ √(2 λ2).  Isolated vertices and disconnected graphs give
    (0, 0).  Uses dense eigensolving (fine at the sizes we simulate).
    """
    n = graph.number_of_nodes()
    if n < 2:
        return (math.inf, math.inf)
    if not nx.is_connected(graph) or min(d for _, d in graph.degree) == 0:
        return (0.0, 0.0)
    laplacian = nx.normalized_laplacian_matrix(graph).todense()
    eigenvalues = np.linalg.eigvalsh(np.asarray(laplacian))
    lambda2 = float(max(eigenvalues[1], 0.0))
    return (lambda2 / 2.0, math.sqrt(2.0 * lambda2))


def conductance(graph: nx.Graph, dense_limit: int = 400) -> float:
    """Φ(G): exact when feasible, else the Cheeger lower bound λ2/2.

    The lower bound is the safe direction for every use in this
    repository (we only ever need certified *at least* φ).  Above
    ``dense_limit`` vertices the λ2 computation switches to a sparse
    Lanczos solve.
    """
    n = graph.number_of_nodes()
    if n <= 10:
        return exact_conductance(graph)
    if n <= dense_limit:
        return spectral_conductance_bounds(graph)[0]
    return _sparse_lambda2(graph) / 2.0


def _sparse_lambda2(graph: nx.Graph) -> float:
    """λ2 of the normalized Laplacian via scipy's sparse eigensolver."""
    if not nx.is_connected(graph) or min(d for _, d in graph.degree) == 0:
        return 0.0
    from scipy.sparse.linalg import eigsh

    laplacian = nx.normalized_laplacian_matrix(graph).astype(float)
    try:
        values = eigsh(
            laplacian, k=2, which="SM", return_eigenvectors=False, maxiter=5000
        )
        return float(max(sorted(values)[1], 0.0))
    except Exception:
        return spectral_conductance_bounds(graph)[0] * 2.0


def is_phi_expander(graph: nx.Graph, phi: float) -> bool:
    """Certify Φ(G) ≥ φ.

    Exact for small graphs.  For larger graphs: accept if the Cheeger
    lower bound certifies it; reject if the Cheeger *upper* bound already
    rules it out; otherwise fall back to a sweep-cut search for a violating
    cut (Cheeger sweep finds a cut of conductance ≤ √(2 λ2); if even that
    cut has conductance ≥ φ *and* λ2/2 ≥ φ²/2 we accept conservatively).
    """
    n = graph.number_of_nodes()
    if n < 2:
        return True
    if n <= 14:
        return exact_conductance(graph) >= phi
    lower, upper = spectral_conductance_bounds(graph)
    if lower >= phi:
        return True
    if upper < phi:
        return False
    sweep = cheeger_sweep_cut(graph)
    if sweep is not None and conductance_of_set(graph, sweep) < phi:
        return False
    # No witness against; the sweep cut (quadratically tight) passed.
    return True


def cheeger_sweep_cut(graph: nx.Graph) -> set | None:
    """Sweep cut from the Fiedler vector: a cut with Φ ≤ √(2 λ2).

    The sweep maintains |∂S| and vol(S) incrementally as each vertex joins
    the prefix (cut grows by deg(v) minus twice the edges into the prefix),
    so the whole sweep costs O(m) instead of the seed's O(n·m) rescans.
    """
    n = graph.number_of_nodes()
    if n < 2 or not nx.is_connected(graph):
        return None
    stats = GraphStats.for_graph(graph)
    nodes = list(graph.nodes)
    laplacian = nx.normalized_laplacian_matrix(graph, nodelist=nodes).todense()
    _, vectors = np.linalg.eigh(np.asarray(laplacian))
    fiedler = vectors[:, 1]
    degrees = np.array([graph.degree[v] for v in nodes], dtype=float)
    order = np.argsort(fiedler / np.sqrt(np.maximum(degrees, 1.0)))
    adj = graph.adj
    total_volume = stats.total_volume
    best_cut, best_phi = None, math.inf
    prefix: set = set()
    cut = 0
    vol = 0
    for idx in order[:-1]:
        v = nodes[int(idx)]
        internal = sum(1 for u in adj[v] if u in prefix)
        cut += stats.degree[v] - 2 * internal
        if v in adj[v]:  # a self-loop never crosses the cut
            cut -= 2
        vol += stats.degree[v]
        prefix.add(v)
        denominator = min(vol, total_volume - vol)
        phi = cut / denominator if denominator else math.inf
        if phi < best_phi:
            best_phi = phi
            best_cut = set(prefix)
    return best_cut


def mixing_time_bound(graph: nx.Graph, phi: float, constant: float = 10.0) -> int:
    """τ_mix ≤ O(φ⁻² log |V|) for the lazy walk on a φ-expander [GKS17, JS89].

    ``constant`` is the hidden constant; the walk router treats this as
    the number of steps to run.
    """
    n = max(2, graph.number_of_nodes())
    return max(1, math.ceil(constant * (phi ** -2) * math.log(n)))


def minor_free_max_degree_lower_bound(
    phi: float, n: int, constant: float = 1.0 / 64.0
) -> float:
    """Lemma 2.7: an H-minor-free φ-expander has Δ ≥ c · φ² · n.

    Returns the bound's value; callers compare the actual Δ against it
    (the property-testing error detection of Section 6.2 rejects when the
    bound fails, certifying the graph is not H-minor-free).
    """
    return constant * phi * phi * n
