"""Degeneracy, forest decompositions, and the Barenboim–Elkin partition.

The heavy-stars analysis (Lemma 4.2) charges against an arboricity bound α
for H-minor-free graphs; the property-testing error detection (Section 6.2)
runs the Barenboim–Elkin forests-decomposition algorithm to *certify* an
arboricity bound or reject.

Exact arboricity needs matroid union; the paper never computes it —
everything is phrased against a known upper bound α = O(1) for the
minor-free class.  We provide:

* ``degeneracy`` / ``degeneracy_ordering`` — exact degeneracy d(G), with
  α ≤ d(G) ≤ 2α − 1, the standard proxy.
* ``acyclic_low_outdegree_orientation`` — orient edges along a degeneracy
  ordering: acyclic, out-degree ≤ d(G).
* ``forest_decomposition`` — split the oriented edges into ≤ d(G) forests
  (out-edge slot i of an acyclic ≤-1-per-slot orientation is a forest).
* ``barenboim_elkin_partition`` — the O(log n)-round H-partition from
  [BE10] as used in Section 6.2: peels vertices of residual degree
  ≤ 3·α0, orients peeled edges, and reports which edges stay unoriented
  (the rejection witness when arboricity > 3·α0).
"""

from __future__ import annotations

import math
from typing import Hashable

import networkx as nx


def degeneracy_ordering(graph: nx.Graph) -> tuple[list[Hashable], int]:
    """Exact degeneracy ordering via iterative min-degree peeling.

    Returns ``(order, d)``: ``order`` lists vertices in peel order and
    ``d`` is the degeneracy (max residual degree at peel time).
    Deterministic: ties broken by vertex ``repr``.
    """
    remaining = {v: set(graph.neighbors(v)) for v in graph.nodes}
    order: list[Hashable] = []
    d = 0
    # Bucket queue over residual degrees for O(m) behaviour.
    buckets: dict[int, set] = {}
    degree_of = {}
    for v, nbrs in remaining.items():
        degree_of[v] = len(nbrs)
        buckets.setdefault(len(nbrs), set()).add(v)
    removed: set = set()
    for _ in range(graph.number_of_nodes()):
        k = min(b for b, s in buckets.items() if s)
        v = min(buckets[k], key=repr)
        buckets[k].discard(v)
        removed.add(v)
        order.append(v)
        d = max(d, k)
        for u in remaining[v]:
            if u in removed:
                continue
            old = degree_of[u]
            buckets[old].discard(u)
            degree_of[u] = old - 1
            buckets.setdefault(old - 1, set()).add(u)
    return order, d


def degeneracy(graph: nx.Graph) -> int:
    """The degeneracy d(G); satisfies arboricity ≤ d(G) ≤ 2·arboricity − 1."""
    return degeneracy_ordering(graph)[1]


def acyclic_low_outdegree_orientation(
    graph: nx.Graph,
) -> tuple[dict[tuple, tuple], int]:
    """Orient each edge from the earlier-peeled endpoint to the later one.

    Returns ``(orientation, d)`` where ``orientation`` maps each edge (as
    the networkx-reported (u, v) tuple) to the directed pair ``(tail,
    head)``.  The orientation is acyclic with out-degree ≤ d(G): a peeled
    vertex has at most d(G) later neighbours.
    """
    order, d = degeneracy_ordering(graph)
    position = {v: i for i, v in enumerate(order)}
    orientation = {}
    for u, v in graph.edges:
        if position[u] < position[v]:
            orientation[(u, v)] = (u, v)
        else:
            orientation[(u, v)] = (v, u)
    return orientation, d


def forest_decomposition(graph: nx.Graph) -> list[nx.Graph]:
    """Partition E(G) into ≤ d(G) forests.

    Each vertex numbers its out-edges (under the acyclic low-out-degree
    orientation) 1..k with k ≤ d(G); slot i collects one out-edge per
    vertex, and since the orientation is acyclic each slot is a forest.
    """
    orientation, d = acyclic_low_outdegree_orientation(graph)
    slots: list[nx.Graph] = [nx.Graph() for _ in range(max(d, 1))]
    for g in slots:
        g.add_nodes_from(graph.nodes)
    out_count: dict[Hashable, int] = {}
    for (tail, head) in sorted(orientation.values(), key=repr):
        slot = out_count.get(tail, 0)
        out_count[tail] = slot + 1
        slots[slot].add_edge(tail, head)
    return [g for g in slots if g.number_of_edges() > 0] or [slots[0]]


def barenboim_elkin_partition(
    graph: nx.Graph, alpha0: int, max_iterations: int | None = None
) -> dict:
    """The [BE10] H-partition with threshold 3·α0, as used in Section 6.2.

    Iteratively (for i = 1, 2, …, O(log n)) peel ``U_i``: the vertices
    whose degree among un-peeled vertices is at most ``3 * alpha0``.  Each
    edge is oriented from the earlier-peeled endpoint (ties by peel index
    then id-order, per the paper: within the same U_i orient towards the
    larger ID).  Edges with an endpoint that is never peeled stay
    unoriented; their endpoints *reject*.

    Returns a dict with:

    ``level``       — ``{v: i}`` peel level, missing if never peeled;
    ``orientation`` — ``{(u, v): (tail, head)}`` for oriented edges;
    ``unoriented``  — list of never-oriented edges;
    ``rejecting``   — set of vertices incident to an unoriented edge;
    ``rounds``      — CONGEST rounds consumed (one per peel iteration,
                      each iteration is a single residual-degree exchange).

    Guarantees (matching [BE10] / Section 6.2):

    * arboricity(G) ≤ α0  ⇒ all vertices peeled, nothing rejects, and the
      orientation is acyclic with out-degree ≤ 3·α0;
    * arboricity(G) > 3·α0 ⇒ at least one vertex rejects.
    """
    n = graph.number_of_nodes()
    if max_iterations is None:
        max_iterations = max(1, 2 * math.ceil(math.log2(max(2, n))) + 2)
    threshold = 3 * alpha0
    level: dict[Hashable, int] = {}
    active = set(graph.nodes)
    residual_degree = {v: graph.degree[v] for v in graph.nodes}
    rounds = 0
    for iteration in range(1, max_iterations + 1):
        if not active:
            break
        rounds += 1
        peel = {v for v in active if residual_degree[v] <= threshold}
        if not peel:
            break
        for v in peel:
            level[v] = iteration
        active -= peel
        for v in peel:
            for u in graph.neighbors(v):
                if u in active:
                    residual_degree[u] -= 1

    orientation: dict[tuple, tuple] = {}
    unoriented: list[tuple] = []
    for u, v in graph.edges:
        lu, lv = level.get(u), level.get(v)
        if lu is None or lv is None:
            unoriented.append((u, v))
            continue
        if lu < lv or (lu == lv and repr(u) < repr(v)):
            orientation[(u, v)] = (u, v)
        else:
            orientation[(u, v)] = (v, u)
    rejecting = {v for e in unoriented for v in e}
    return {
        "level": level,
        "orientation": orientation,
        "unoriented": unoriented,
        "rejecting": rejecting,
        "rounds": rounds,
    }
