"""Graph substrate: generators, structure tests, and quantities from the paper.

Contents
--------
``generators``
    Minor-free graph families (planar grids, triangulations, trees,
    outerplanar, cactus, bounded treewidth) plus ε-far instances (random
    regular expanders) used in the property-testing experiments.
``streaming``
    Edge-block streams (power-law / R-MAT / random-regular) from
    counter-based Philox generators for million-node topologies —
    consumed by ``repro.congest.runtime.compile.compile_edge_stream``.
``minors``
    Planarity / outerplanarity / cactus predicates and a brute-force
    H-minor containment test for small graphs (used by cluster leaders,
    whose local computation is free in the model).
``arboricity``
    Degeneracy orderings, Nash–Williams-style forest decompositions, and
    the Barenboim–Elkin distributed forest-decomposition partition used by
    the paper's error-detection mechanism (Section 6.2).
``conductance``
    Volume / cut / conductance / sparsity (Section 2 definitions), exact
    small-graph conductance, spectral Cheeger bounds, and the minor-free
    degree bound of Lemma 2.7.
``expander_split``
    The expander split G⋄ of Section 2.
``cluster_graph``
    Weighted cluster graphs of vertex partitions (Section 4.1).
"""

from repro.graphs.streaming import (
    QUANTUM,
    materialize_edges,
    stream_powerlaw_edges,
    stream_random_regular_edges,
    stream_rmat_edges,
)
from repro.graphs.generators import (
    bounded_treewidth_graph,
    cycle_graph,
    grid_graph,
    path_graph,
    random_cactus,
    random_outerplanar,
    random_planar_triangulation,
    random_regular_expander,
    random_tree,
    star_graph,
    subdivide_graph,
    triangulated_grid,
)
from repro.graphs.minors import (
    has_minor,
    is_cactus,
    is_forest,
    is_h_minor_free,
    is_outerplanar,
    is_planar,
)
from repro.graphs.arboricity import (
    acyclic_low_outdegree_orientation,
    barenboim_elkin_partition,
    degeneracy,
    degeneracy_ordering,
    forest_decomposition,
)
from repro.graphs.conductance import (
    conductance,
    conductance_of_set,
    cut_size,
    exact_conductance,
    is_phi_expander,
    minor_free_max_degree_lower_bound,
    mixing_time_bound,
    spectral_conductance_bounds,
    sparsity_of_set,
    volume,
)
from repro.graphs.expander_split import ExpanderSplit, constant_degree_expander
from repro.graphs.cluster_graph import build_cluster_graph, contract_partition
from repro.graphs.cache import PerGraphCache, invalidate_graph_caches
from repro.graphs.stats import GraphStats

__all__ = [
    "QUANTUM",
    "materialize_edges",
    "stream_powerlaw_edges",
    "stream_random_regular_edges",
    "stream_rmat_edges",
    "bounded_treewidth_graph",
    "cycle_graph",
    "grid_graph",
    "path_graph",
    "random_cactus",
    "random_outerplanar",
    "random_planar_triangulation",
    "random_regular_expander",
    "random_tree",
    "star_graph",
    "subdivide_graph",
    "triangulated_grid",
    "has_minor",
    "is_cactus",
    "is_forest",
    "is_h_minor_free",
    "is_outerplanar",
    "is_planar",
    "acyclic_low_outdegree_orientation",
    "barenboim_elkin_partition",
    "degeneracy",
    "degeneracy_ordering",
    "forest_decomposition",
    "conductance",
    "conductance_of_set",
    "cut_size",
    "exact_conductance",
    "is_phi_expander",
    "minor_free_max_degree_lower_bound",
    "mixing_time_bound",
    "spectral_conductance_bounds",
    "sparsity_of_set",
    "volume",
    "ExpanderSplit",
    "constant_degree_expander",
    "build_cluster_graph",
    "contract_partition",
    "GraphStats",
    "PerGraphCache",
    "invalidate_graph_caches",
]
