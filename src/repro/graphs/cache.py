"""One per-graph memoization protocol for compiled graph artifacts.

Two subsystems compile a ``networkx.Graph`` into a derived object and
memoize it per graph instance: the CONGEST engine's
:class:`~repro.congest.engine.CompiledTopology` and the structural-stats
cache :class:`~repro.graphs.stats.GraphStats`.  Before this module each
kept its own ``WeakKeyDictionary`` with its own copy of the staleness
check — which meant a mutation could be detected by one cache and missed
by the other, serving a stale compilation next to fresh stats.

:class:`PerGraphCache` centralizes the protocol:

* weak-keyed memoization (graphs stay garbage-collectible);
* an O(n) staleness probe on every hit — the caller supplies ``fresh``,
  a predicate comparing the cached value's recorded degree table against
  the live graph (n, m, and per-vertex degrees; degrees determine 2m);
* registration in a module-level registry so
  :func:`invalidate_graph_caches` drops *every* compiled artifact for a
  graph at once.

The staleness probe cannot see a *degree-preserving* rewire (e.g.
``nx.double_edge_swap``): every vertex keeps its degree, so n, m, and
the degree table all match while adjacency changed.  After such a
mutation call :func:`invalidate_graph_caches` (or the ``invalidate``
classmethod on either cached type — both now clear all registered
caches), or pass a fresh graph copy.
"""

from __future__ import annotations

import hashlib
import weakref
from typing import Any, Callable

import networkx as nx

_REGISTRY: "list[PerGraphCache]" = []


class PerGraphCache:
    """Weak per-graph memo cache with a shared staleness/invalidation
    protocol.

    Parameters
    ----------
    build:
        ``graph -> value``; called on a miss or when ``fresh`` rejects
        the cached value.
    fresh:
        ``(value, graph) -> bool``; must compare the value's recorded
        n/degree table against the live graph.  Returning ``False``
        triggers a rebuild.
    name:
        Diagnostic label (shown by :func:`registered_caches`).
    """

    __slots__ = ("build", "fresh", "name", "_instances")

    def __init__(
        self,
        build: Callable[[nx.Graph], Any],
        fresh: Callable[[Any, nx.Graph], bool],
        name: str,
    ) -> None:
        self.build = build
        self.fresh = fresh
        self.name = name
        self._instances: "weakref.WeakKeyDictionary[nx.Graph, Any]" = (
            weakref.WeakKeyDictionary()
        )
        _REGISTRY.append(self)

    def get(self, graph: nx.Graph) -> Any:
        value = self._instances.get(graph)
        if value is not None and self.fresh(value, graph):
            return value
        value = self.build(graph)
        self._instances[graph] = value
        return value

    def invalidate(self, graph: nx.Graph) -> None:
        """Drop this cache's entry for ``graph`` only.  Almost always you
        want :func:`invalidate_graph_caches` instead, which keeps every
        compiled artifact in sync."""
        self._instances.pop(graph, None)


def invalidate_graph_caches(graph: nx.Graph) -> None:
    """Drop every registered cache's entry for ``graph``.

    The remedy for in-place mutations the degree-table staleness probe
    cannot detect (degree-preserving rewires): clearing all registries at
    once guarantees no subsystem keeps serving a stale compilation while
    another rebuilds.
    """
    for cache in _REGISTRY:
        cache.invalidate(graph)


def registered_caches() -> list[str]:
    """Names of all registered per-graph caches (diagnostics/tests)."""
    return [cache.name for cache in _REGISTRY]


def graph_fingerprint(graph: nx.Graph) -> str:
    """Content digest of a graph: vertices, adjacency, and attributes.

    A blake2b hex digest over n, m, every vertex (with its attribute
    dict) and every edge (with its attribute dict), in the graph's own
    iteration order.  Unlike the instance-keyed :class:`PerGraphCache`
    this names graph *content*, so two structurally identical copies —
    in particular a graph and its pickle round-trip on a fabric worker —
    share one fingerprint.  Dict insertion order survives pickling, so
    the digest is stable across that round-trip; it is *not* an
    isomorphism test (a relabelled or reordered build hashes
    differently, which for content-addressed payload caching is the
    conservative direction).
    """
    digest = hashlib.blake2b(digest_size=16)
    digest.update(
        f"{graph.number_of_nodes()}|{graph.number_of_edges()}".encode()
    )
    for vertex, data in graph.nodes(data=True):
        digest.update(
            repr((vertex, sorted(data.items()) if data else ())).encode()
        )
    for u, v, data in graph.edges(data=True):
        digest.update(
            repr((u, v, sorted(data.items()) if data else ())).encode()
        )
    return digest.hexdigest()
