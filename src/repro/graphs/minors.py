"""Minor containment and minor-closed property predicates.

The paper's framework needs two kinds of structural tests:

* *Cluster-local* exact tests run by a cluster leader on the gathered
  topology of its small cluster (local computation is free in the model):
  planarity, outerplanarity, forest/cactus membership, and generic
  H-minor containment for a small pattern H.

* *Global* membership checks used by the test-suite oracles.

The generic :func:`has_minor` is a branch-and-bound search for a minor
model of H in G (each branch contracts or deletes an edge).  It is
exponential in the worst case, which is fine for the cluster sizes the
decomposition produces and matches the model's free local computation.
"""

from __future__ import annotations

from functools import lru_cache

import networkx as nx


def is_planar(graph: nx.Graph) -> bool:
    """Planarity via the left-right algorithm (networkx)."""
    ok, _ = nx.check_planarity(graph)
    return ok


def is_forest(graph: nx.Graph) -> bool:
    """A graph is a forest iff it has no cycle."""
    return nx.is_forest(graph) if graph.number_of_nodes() else True


def is_outerplanar(graph: nx.Graph) -> bool:
    """Outerplanarity via the apex trick.

    G is outerplanar iff G plus a universal vertex is planar (equivalently
    G has no K4 or K2,3 minor).
    """
    if graph.number_of_nodes() == 0:
        return True
    apexed = graph.copy()
    apex = ("__outerplanar_apex__",)
    apexed.add_node(apex)
    for v in graph.nodes:
        apexed.add_edge(apex, v)
    return is_planar(apexed)


def is_cactus(graph: nx.Graph) -> bool:
    """A cactus: connected components where every edge is in ≤ 1 cycle.

    Equivalent to: every biconnected component is an edge or a cycle,
    i.e. each block with k vertices has exactly k edges (cycle) or 1 edge.
    """
    for component in nx.connected_components(graph):
        sub = graph.subgraph(component)
        for block in nx.biconnected_components(sub):
            block_graph = sub.subgraph(block)
            v, e = block_graph.number_of_nodes(), block_graph.number_of_edges()
            if e > 1 and e != v:
                return False
    return True


# ---------------------------------------------------------------------------
# Generic minor containment
# ---------------------------------------------------------------------------
def _canonical(graph: nx.Graph) -> tuple:
    """Canonical form for memoizing small graphs (sorted edge multiset
    after degree-refined relabelling; exact up to the refinement, used only
    as a cache key where false negatives merely cost recomputation)."""
    nodes = sorted(graph.nodes, key=lambda v: (graph.degree[v], repr(v)))
    index = {v: i for i, v in enumerate(nodes)}
    edges = tuple(
        sorted(tuple(sorted((index[u], index[v]))) for u, v in graph.edges)
    )
    return (graph.number_of_nodes(), edges)


def has_minor(graph: nx.Graph, pattern: nx.Graph, _budget: int = 500_000) -> bool:
    """Decide whether ``pattern`` is a minor of ``graph`` (exact, exponential).

    Uses the standard recursive characterization: since minor operations
    commute, H is a minor of G iff H is a subgraph of some graph obtained
    from G by edge *contractions only* (deletions are absorbed by the
    subgraph check).  The search therefore checks subgraph containment,
    then branches over contracting each edge, with memoization on a
    canonical form and the usual count/degree pruning rules — practical
    for the small cluster graphs the paper's local computations see.

    Raises ``RuntimeError`` when the state-expansion budget is exhausted
    (never observed at the sizes used here; the guard makes accidental
    misuse on big graphs fail loudly rather than hang).
    """
    pattern = nx.Graph(pattern)
    pattern.remove_edges_from(nx.selfloop_edges(pattern))
    if pattern.number_of_edges() == 0:
        return graph.number_of_nodes() >= pattern.number_of_nodes()

    budget = [_budget]
    seen: set[tuple] = set()
    n_pattern = pattern.number_of_nodes()
    rank_pattern = _cycle_rank(pattern)

    def search(g: nx.Graph) -> bool:
        budget[0] -= 1
        if budget[0] < 0:
            raise RuntimeError("has_minor search budget exhausted")
        if g.number_of_nodes() < n_pattern:
            return False
        if g.number_of_edges() < pattern.number_of_edges():
            return False
        if _cycle_rank(g) < rank_pattern:
            return False  # minor operations never increase cycle rank
        key = _canonical(g)
        if key in seen:
            return False
        seen.add(key)
        if _subgraph_contains(g, pattern):
            return True
        if g.number_of_nodes() == n_pattern:
            return False  # contracting further only shrinks below |V(H)|
        for u, v in sorted(g.edges, key=lambda e: (repr(e[0]), repr(e[1]))):
            contracted = nx.contracted_nodes(g, u, v, self_loops=False)
            if search(contracted):
                return True
        return False

    return search(nx.Graph(graph))


def _subgraph_contains(g: nx.Graph, h: nx.Graph) -> bool:
    """Is H a subgraph of G (up to isomorphism on the edge-carrying part)?"""
    core = h.subgraph([v for v in h.nodes if h.degree[v] > 0])
    matcher = nx.algorithms.isomorphism.GraphMatcher(g, core)
    if not matcher.subgraph_is_monomorphic():
        return False
    spare = g.number_of_nodes() - core.number_of_nodes()
    isolated = h.number_of_nodes() - core.number_of_nodes()
    return spare >= isolated


def _cycle_rank(graph: nx.Graph) -> int:
    """Cyclomatic number m − n + c; monotone under minor operations."""
    return (
        graph.number_of_edges()
        - graph.number_of_nodes()
        + nx.number_connected_components(graph)
    )


def _is_complete(pattern: nx.Graph) -> int | None:
    n = pattern.number_of_nodes()
    if pattern.number_of_edges() == n * (n - 1) // 2:
        return n
    return None


def is_h_minor_free(graph: nx.Graph, pattern: nx.Graph) -> bool:
    """Convenience wrapper: True iff ``pattern`` is *not* a minor of ``graph``.

    Fast paths avoiding the exponential search:

    * K3: G has a K3 minor iff G has a cycle (exact, both directions);
    * K5 / K3,3 on planar inputs: minor-free by Wagner's theorem;
    * complete patterns K_r: if an (approximate, upper-bound) treewidth of
      G is ≤ r − 2, then G is K_r-minor-free (K_r has treewidth r − 1 and
      treewidth never increases under minors).
    """
    n_p, m_p = pattern.number_of_nodes(), pattern.number_of_edges()
    complete_r = _is_complete(pattern)
    if complete_r == 3:
        return nx.is_forest(graph) if graph.number_of_nodes() else True
    if (n_p, m_p) == (5, 10) or _is_k33(pattern):
        if is_planar(graph):
            return True
    if complete_r is not None and complete_r >= 4:
        from networkx.algorithms.approximation import treewidth_min_degree

        width, _ = treewidth_min_degree(graph)
        if width <= complete_r - 2:
            return True
    return not has_minor(graph, pattern)


@lru_cache(maxsize=None)
def _k33_edges() -> frozenset:
    return frozenset(
        frozenset((a, b)) for a in range(3) for b in range(3, 6)
    )


def _is_k33(pattern: nx.Graph) -> bool:
    if pattern.number_of_nodes() != 6 or pattern.number_of_edges() != 9:
        return False
    return nx.is_isomorphic(pattern, nx.complete_bipartite_graph(3, 3))
