"""Generators for the graph families used throughout the paper's experiments.

All H-minor-free families the paper's introduction lists are covered:
forests, cactus graphs, planar graphs (grids, triangulated grids, random
Delaunay-style triangulations), outerplanar graphs, and bounded-treewidth
graphs (partial k-trees).  For the property-testing experiments we also
need graphs *ε-far* from planarity; random regular graphs with degree ≥ 3
are expanders with high probability and serve that role (Section 6.2 uses
exactly such high-girth expander families for the lower bound).

All generators are deterministic given ``seed`` and never return
multigraphs or self-loops.
"""

from __future__ import annotations

import itertools
import math
import random

import networkx as nx


def _seeded_rng(seed: int, scope: list | None = None) -> random.Random:
    """The one place this module seeds ``random.Random``.

    With ``scope=None`` this is the historical ``random.Random(seed)``
    stream (existing families stay byte-identical).  With a scope list —
    e.g. ``[n, degree, attempt]`` for generator retries — the seed is
    folded through the shared Philox key-derivation in
    :mod:`repro.congest.runtime.rng`, so derived streams are independent
    instead of the old overlapping ``seed + attempt`` arithmetic.  Scope
    entries must be ints (string hashing is PYTHONHASHSEED-randomized).
    """
    if scope is None:
        return random.Random(seed)
    from repro.congest.runtime.rng import derive_stream_key

    return random.Random(derive_stream_key(seed, scope))


def path_graph(n: int) -> nx.Graph:
    """Path on ``n`` vertices (the Lenzen–Wattenhofer lower-bound family)."""
    return nx.path_graph(n)


def cycle_graph(n: int) -> nx.Graph:
    """Cycle on ``n`` vertices."""
    return nx.cycle_graph(n)


def star_graph(n: int) -> nx.Graph:
    """Star with ``n`` leaves (max-degree stress case, still a tree)."""
    return nx.star_graph(n)


def random_tree(n: int, seed: int = 0) -> nx.Graph:
    """Uniformly random labelled tree on ``n`` vertices."""
    if n <= 0:
        raise ValueError("n must be positive")
    if n == 1:
        g = nx.Graph()
        g.add_node(0)
        return g
    return nx.random_labeled_tree(n, seed=seed)


def grid_graph(rows: int, cols: int) -> nx.Graph:
    """2-D grid graph (planar, Δ = 4), relabelled to integers 0..rows*cols-1."""
    g = nx.grid_2d_graph(rows, cols)
    return nx.convert_node_labels_to_integers(g, ordering="sorted")


def triangulated_grid(rows: int, cols: int) -> nx.Graph:
    """2-D grid with one diagonal per cell (planar, Δ = 6).

    A denser planar family than the plain grid: m ≈ 3n, close to the planar
    maximum, which stresses the ε|E| inter-cluster-edge budget.
    """
    g = nx.grid_2d_graph(rows, cols)
    for r in range(rows - 1):
        for c in range(cols - 1):
            g.add_edge((r, c), (r + 1, c + 1))
    return nx.convert_node_labels_to_integers(g, ordering="sorted")


def random_planar_triangulation(n: int, seed: int = 0) -> nx.Graph:
    """Random maximal-ish planar graph via incremental triangulation.

    Builds a planar triangulation by inserting vertices one at a time into
    a random face of the current triangulation (connecting the new vertex
    to the face's three corners).  The result is a maximal planar graph
    (every face a triangle) with a skewed degree distribution — the
    natural "hard" planar instance with large Δ.
    """
    if n < 3:
        return nx.complete_graph(n)
    rng = _seeded_rng(seed)
    g = nx.Graph()
    g.add_edges_from([(0, 1), (1, 2), (0, 2)])
    faces = [(0, 1, 2), (0, 1, 2)]  # outer + inner face of the triangle
    for v in range(3, n):
        face_index = rng.randrange(len(faces))
        a, b, c = faces.pop(face_index)
        g.add_edges_from([(v, a), (v, b), (v, c)])
        faces.extend([(v, a, b), (v, b, c), (v, a, c)])
    return g


def random_outerplanar(n: int, seed: int = 0, extra_chords: float = 0.5) -> nx.Graph:
    """Random outerplanar graph: a cycle plus non-crossing chords.

    Chords are sampled as a random non-crossing chord set of the n-gon
    (built by recursive splitting), so the result is outerplanar by
    construction.  ``extra_chords`` in [0, 1] controls chord density.
    """
    if n <= 1:
        g = nx.Graph()
        g.add_nodes_from(range(max(n, 0)))
        return g
    if n == 2:
        return nx.path_graph(2)
    rng = _seeded_rng(seed)
    g = nx.cycle_graph(n)

    def add_chords(lo: int, hi: int) -> None:
        """Add non-crossing chords inside the polygon arc lo..hi."""
        if hi - lo < 3:
            return
        if rng.random() > extra_chords:
            return
        mid = rng.randrange(lo + 2, hi)  # chord (lo, mid) skips >= 1 vertex
        g.add_edge(lo, mid % n)
        add_chords(lo, mid)
        add_chords(mid, hi)

    add_chords(0, n)
    return g


def random_cactus(n: int, seed: int = 0, cycle_probability: float = 0.5) -> nx.Graph:
    """Random cactus: every edge lies on at most one cycle.

    Grown by repeatedly attaching either a pendant edge or a small cycle to
    a random existing vertex.
    """
    rng = _seeded_rng(seed)
    g = nx.Graph()
    g.add_node(0)
    next_vertex = 1
    while next_vertex < n:
        anchor = rng.randrange(next_vertex)
        remaining = n - next_vertex
        if remaining >= 2 and rng.random() < cycle_probability:
            cycle_len = rng.randint(2, min(4, remaining))
            new_vertices = list(range(next_vertex, next_vertex + cycle_len))
            chain = [anchor, *new_vertices, anchor]
            for a, b in itertools.pairwise(chain):
                g.add_edge(a, b)
            next_vertex += cycle_len
        else:
            g.add_edge(anchor, next_vertex)
            next_vertex += 1
    return g


def bounded_treewidth_graph(
    n: int, treewidth: int, seed: int = 0, keep_probability: float = 0.7
) -> nx.Graph:
    """Random partial k-tree: treewidth ≤ ``treewidth``.

    Builds a random k-tree (every new vertex joined to a random existing
    clique of size k) and then independently keeps each edge with
    ``keep_probability`` (subgraphs of k-trees are exactly the graphs of
    treewidth ≤ k); deleted vertices' connectivity is restored by keeping a
    spanning tree so the output is connected.
    """
    k = treewidth
    if n <= k + 1:
        return nx.complete_graph(n)
    rng = _seeded_rng(seed)
    g = nx.complete_graph(k + 1)
    cliques = [tuple(range(k + 1))]
    for v in range(k + 1, n):
        base = list(rng.choice(cliques))
        rng.shuffle(base)
        chosen = base[:k]
        for u in chosen:
            g.add_edge(v, u)
        cliques.append(tuple([v, *chosen]))
    if keep_probability >= 1.0:
        return g
    spanning = nx.minimum_spanning_tree(g)
    keep = set(frozenset(e) for e in spanning.edges)
    out = nx.Graph()
    out.add_nodes_from(g.nodes)
    for e in g.edges:
        if frozenset(e) in keep or rng.random() < keep_probability:
            out.add_edge(*e)
    return out


def random_regular_expander(n: int, degree: int = 4, seed: int = 0) -> nx.Graph:
    """Random ``degree``-regular graph: w.h.p. an expander, hence ε-far from
    any fixed minor-closed property for suitable ε (Section 6.2's reject
    instances).

    Retries the pairing model until simple and connected.  Attempt 0
    uses ``seed`` verbatim (the historical stream, so seeded graphs that
    connect first try are unchanged); retries derive independent seeds
    through the shared Philox key-derivation instead of the old
    overlapping ``seed + attempt`` streams.
    """
    if n * degree % 2:
        raise ValueError("n * degree must be even")
    for attempt in range(100):
        attempt_rng = (
            seed if attempt == 0
            else _seeded_rng(seed, [n, degree, attempt])
        )
        g = nx.random_regular_graph(degree, n, seed=attempt_rng)
        if nx.is_connected(g):
            return g
    raise RuntimeError("failed to generate a connected regular graph")


def subdivide_graph(graph: nx.Graph, segments: int) -> nx.Graph:
    """Replace every edge by a path of ``segments`` edges.

    Used by the lower-bound constructions (Theorems 6.1/6.2 extend the
    Ω(log n) bounds to Ω(log n / ε) by subdividing into O(1/ε)-length
    paths).  New vertices are ``(u, v, i)`` tuples; original labels kept.
    """
    if segments < 1:
        raise ValueError("segments must be >= 1")
    if segments == 1:
        return graph.copy()
    out = nx.Graph()
    out.add_nodes_from(graph.nodes)
    for u, v in graph.edges:
        key = (u, v) if repr(u) <= repr(v) else (v, u)
        chain = [u] + [("sub", *key, i) for i in range(1, segments)] + [v]
        for a, b in itertools.pairwise(chain):
            out.add_edge(a, b)
    return out
