"""repro — a full reproduction of Chang, "Efficient Distributed
Decomposition and Routing Algorithms in Minor-Free Networks and Their
Applications" (PODC 2023).

Layers (bottom-up, matching the paper's structure):

* :mod:`repro.congest` — the LOCAL/CONGEST synchronous message-passing
  simulator and stock primitives (BFS, broadcast, convergecast,
  Cole–Vishkin colouring).
* :mod:`repro.graphs` — minor-free graph families, structural predicates,
  arboricity/forest decompositions, conductance machinery, the expander
  split.
* :mod:`repro.gathering` — information gathering in high-conductance
  graphs: GLM load balancing (Lemma 2.2) and derandomized lazy random
  walks (Lemmas 2.5/2.6).
* :mod:`repro.decomposition` — KPR low-diameter decomposition, heavy
  stars, overlapping expander decompositions, and the (ε, D, T)-
  decomposition of Theorem 1.1.
* :mod:`repro.applications` — distributed approximation (max cut,
  matching, vertex cover, independent set) and property testing.

Quick start::

    import networkx as nx
    from repro import edt_decomposition

    graph = nx.convert_node_labels_to_integers(nx.grid_2d_graph(16, 16))
    decomposition = edt_decomposition(graph, epsilon=0.25)
    print(decomposition.epsilon(graph), decomposition.diameter(graph))
"""

from repro.congest import Network, NodeAlgorithm, Message, RoundLedger
from repro.decomposition import (
    Clustering,
    EDTDecomposition,
    chw_low_diameter_decomposition,
    edt_decomposition,
    kpr_low_diameter_decomposition,
    overlap_expander_decomposition,
)
from repro.applications import (
    approximate_max_cut,
    approximate_maximum_independent_set,
    approximate_maximum_matching,
    approximate_minimum_vertex_cover,
    test_minor_closed_property,
)

__version__ = "1.0.0"

__all__ = [
    "Network",
    "NodeAlgorithm",
    "Message",
    "RoundLedger",
    "Clustering",
    "EDTDecomposition",
    "chw_low_diameter_decomposition",
    "edt_decomposition",
    "kpr_low_diameter_decomposition",
    "overlap_expander_decomposition",
    "approximate_max_cut",
    "approximate_maximum_independent_set",
    "approximate_maximum_matching",
    "approximate_minimum_vertex_cover",
    "test_minor_closed_property",
    "__version__",
]
