"""Existential expander decompositions (Section 3).

* :func:`expander_decomposition_fact31` — Fact 3.1's recursive sparse-cut
  scheme: while some cluster admits a cut of conductance < φ =
  ε/(4 log |V|), cut it and recurse.  The charging argument bounds the cut
  edges by ε|E| *provided every performed cut has conductance < φ*; the
  implementation preserves exactly that invariant (cuts are only taken
  when their measured conductance is < φ), so the ε bound is
  unconditional.  Sub-φ cuts are searched exactly on small clusters and by
  Cheeger sweep on larger ones; when no sub-φ cut is found the cluster is
  accepted (for small clusters this certifies Φ ≥ φ exactly; for large
  ones the sweep's quadratic tightness makes misses harmless in practice —
  measured conductances are reported by the validation).

* :func:`expander_decomposition_obs31` — Observation 3.1's three-step
  pipeline for H-minor-free graphs, achieving φ = Ω(ε / (log 1/ε + log Δ))
  independent of n: KPR low-diameter decomposition (clusters have ≤
  Δ^{O(1/ε)} vertices), then Fact 3.1 inside each cluster, then once more
  (cluster sizes now bounded through Lemma 2.7).
"""

from __future__ import annotations

import math
from typing import Hashable, Iterable

import networkx as nx

from repro.decomposition.kpr import kpr_low_diameter_decomposition
from repro.decomposition.types import Clustering
from repro.graphs.conductance import (
    cheeger_sweep_cut,
    conductance_of_set,
    exact_conductance,
)


def _find_sub_phi_cut(graph: nx.Graph, phi: float, exact_limit: int = 14):
    """A vertex set S with Φ(S) < φ, or None if none was found.

    Exact enumeration below ``exact_limit`` vertices; Cheeger sweep above.
    """
    n = graph.number_of_nodes()
    if n < 2:
        return None
    if not nx.is_connected(graph):
        components = list(nx.connected_components(graph))
        return set(components[0])
    if n <= exact_limit:
        best_set, best_phi = None, math.inf
        import itertools

        nodes = list(graph.nodes)
        anchor, rest = nodes[0], nodes[1:]
        for r in range(len(rest) + 1):
            for combo in itertools.combinations(rest, r):
                subset = {anchor, *combo}
                if len(subset) == n:
                    continue
                value = conductance_of_set(graph, subset)
                if value < best_phi:
                    best_phi, best_set = value, subset
        return best_set if best_phi < phi else None
    sweep = cheeger_sweep_cut(graph)
    if sweep is not None and conductance_of_set(graph, sweep) < phi:
        return sweep
    return None


def expander_decomposition_fact31(
    graph: nx.Graph,
    epsilon: float,
    phi: float | None = None,
) -> tuple[Clustering, float]:
    """Fact 3.1: an (ε, φ) expander decomposition with φ = ε / (4 log |V|).

    Returns ``(clustering, phi)``.  The ε bound is guaranteed by the
    charging argument (only sub-φ cuts are ever taken); the φ bound is
    exact on clusters small enough to enumerate and best-effort (Cheeger
    sweep) above — see the module docstring.
    """
    if not 0 < epsilon <= 1:
        raise ValueError("epsilon must lie in (0, 1]")
    n = graph.number_of_nodes()
    if phi is None:
        phi = epsilon / (4 * math.log2(max(4, n)))
    final: list[set] = []
    stack: list[set] = [set(c) for c in nx.connected_components(graph)]
    while stack:
        piece = stack.pop()
        if len(piece) <= 1:
            final.append(piece)
            continue
        sub = graph.subgraph(piece)
        cut = _find_sub_phi_cut(sub, phi)
        if cut is None:
            final.append(piece)
            continue
        stack.append(set(cut))
        stack.append(piece - set(cut))
    return Clustering.from_sets(final), phi


def expander_decomposition_obs31(
    graph: nx.Graph,
    epsilon: float,
    kpr_depth: int = 3,
) -> tuple[Clustering, float]:
    """Observation 3.1: (ε, φ) with φ = Ω(ε / (log 1/ε + log Δ)) on
    H-minor-free graphs.

    Three steps, each allotted ε/3: KPR LDD, then Fact 3.1 within each
    cluster, then Fact 3.1 again (the second pass benefits from the
    Lemma 2.7 size bound).  Returns ``(clustering, phi_target)`` where
    ``phi_target`` is the Observation's conductance value for this Δ and
    ε; measured per-cluster conductances are asserted by the validation
    helpers.
    """
    if not 0 < epsilon <= 1:
        raise ValueError("epsilon must lie in (0, 1]")
    if graph.number_of_nodes() == 0:
        return Clustering({}), 1.0
    step = epsilon / 3.0
    ldd = kpr_low_diameter_decomposition(graph, step, depth=kpr_depth)

    def refine(clustering: Clustering) -> Clustering:
        parts: list[set] = []
        for members in clustering.clusters().values():
            sub = graph.subgraph(members)
            inner, _ = expander_decomposition_fact31(sub, step)
            parts.extend(inner.clusters().values())
        return Clustering.from_sets(parts)

    second = refine(ldd)
    third = refine(second)
    delta = max((d for _, d in graph.degree), default=1)
    phi_target = epsilon / (
        16 * (math.log2(max(2, 1 / epsilon)) + math.log2(max(2, delta)))
    )
    return third, phi_target
