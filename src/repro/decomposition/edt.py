"""(ε, D, T)-decompositions: the paper's main object (Section 5, Thm 1.1).

Structure of this module, mirroring the paper:

* :func:`local_edt_lemma51` / :func:`local_edt_lemma52` — the two
  *existential* constructions of Section 5.1, run as leader-local
  computation on a gathered cluster topology:

  - Lemma 5.1: overlap expander decomposition (Lemma 4.1) → expel weakly
    attached vertices → per-cluster Lemma 2.2 routing (failed vertices F_S
    expelled) → KPR diameter reduction.  T = 2^O(log² 1/ε) · O(log Δ).
  - Lemma 5.2: Fact 3.1 expander decomposition → shared Lemma 2.6 walk
    schedule (one bit string for all clusters) → KPR.  T = poly(1/ε, log Δ).

* :func:`refine_merge` — Lemma 5.3: heavy-stars merging on the cluster
  graph with the vol(S)-based light-link rule; improves ε by (1 − 1/(16α))
  at the cost D' = 3D + 2 and T' = O((T + 1)/ε) (satellites forward their
  load through the inter-star edges into the center's routing group).

* :func:`refine_local` — Lemmas 5.4/5.5: every cluster leader locally
  recomputes a fresh decomposition of its cluster with ε* = ε/(32α),
  resetting D and T.

* :func:`edt_decomposition` — Theorem 1.1: alternate refine_merge and
  refine_local from the trivial (1, 0, 0)-decomposition until the measured
  cut fraction reaches ε.

Routing is *measured*: :func:`run_gather_on_groups` executes the selected
backend (load balancing per Lemma 2.2 or derandomized walks per Lemma 2.5)
on every routing group and records the max rounds as the decomposition's
T.  During construction the backends can run in ``analytic`` mode (charge
the paper's formula against measured φ̂) to keep iteration affordable; the
final decomposition is always measurable.
"""

from __future__ import annotations

import math
from typing import Hashable

import networkx as nx

from repro.congest.metrics import RoundLedger
from repro.decomposition.heavy_stars import heavy_stars
from repro.decomposition.kpr import kpr_low_diameter_decomposition
from repro.decomposition.existential import expander_decomposition_fact31
from repro.decomposition.overlap_expander import overlap_expander_decomposition
from repro.decomposition.types import (
    Clustering,
    EDTDecomposition,
    RoutingGroup,
)
from repro.graphs.cluster_graph import build_cluster_graph
from repro.graphs.conductance import conductance
from repro.graphs.stats import GraphStats


# ---------------------------------------------------------------------------
# Local (leader-side) constructions — Section 5.1
# ---------------------------------------------------------------------------
def _max_degree_vertex(graph: nx.Graph) -> Hashable:
    return max(graph.nodes, key=lambda v: (graph.degree[v], repr(v)))


def _analytic_gather_rounds(subgraph: nx.Graph, backend: str) -> int:
    """The paper's T formula charged against the measured conductance φ̂.

    Lemma 2.2 (load balancing): O(φ̂⁻⁴ log³ m̂);
    Lemma 2.5 (walks):          O(φ̂⁻⁴ log² m̂).
    """
    m_hat = max(2, subgraph.number_of_edges())
    phi_hat = max(conductance(subgraph), 1e-6)
    log_m = math.log2(m_hat)
    exponent = 3 if backend == "load_balancing" else 2
    return min(10 ** 9, math.ceil((phi_hat ** -4) * (log_m ** exponent)))


def local_edt_lemma51(
    subgraph: nx.Graph,
    epsilon: float,
    alpha: int | None = None,
    measure_routing: bool = False,
    gather_f: float | None = None,
) -> dict:
    """Lemma 5.1 construction on a (gathered) topology ``subgraph``.

    Returns ``{"parts": [set, ...], "groups": {part_index: RoutingGroup},
    "routing_rounds": T}``.  Parts partition V(subgraph); parts of size 1
    have no routing group; several parts can share one group (they came
    from the same overlap cluster G_S, whose v⋆ serves them all — the
    paper's shared-leader feature).
    """
    if not 0 < epsilon <= 1:
        raise ValueError("epsilon must lie in (0, 1]")
    if alpha is None:
        alpha = max(1, GraphStats.for_graph(subgraph).degeneracy)
    if subgraph.number_of_edges() == 0:
        return {
            "parts": [{v} for v in subgraph.nodes],
            "groups": {},
            "routing_rounds": 0,
        }

    # Step 0: (ε/4, φ, c) overlap expander decomposition (Lemma 4.1).
    decomposition, stats = overlap_expander_decomposition(
        subgraph, epsilon / 4.0, alpha=alpha, measure_conductance=False
    )
    c = max(1, decomposition.max_overlap())

    # Step 1: expel u with deg_{G_S}(u) ≤ deg(u)/4 into singletons.
    working = []
    singles: list[set] = []
    for cluster in decomposition.clusters:
        members = set(cluster.members)
        if len(members) > 1:
            sub_s = cluster.subgraph()
            expelled = {
                u
                for u in members
                if sub_s.degree[u] <= subgraph.degree[u] / 4.0
            }
            members -= expelled
            singles.extend({u} for u in expelled)
        if members:
            working.append((members, cluster))
    parts: list[set] = list(singles)
    groups: dict[int, RoutingGroup] = {}
    routing_rounds = 0

    for members, cluster in working:
        if len(members) == 1:
            parts.append(set(members))
            continue
        g_s = cluster.subgraph()
        sink = _max_degree_vertex(g_s)
        if measure_routing:
            from repro.gathering.load_balancing import gather_with_load_balancing

            f = gather_f if gather_f is not None else max(
                1e-3, epsilon / (16.0 * c)
            )
            outcome = gather_with_load_balancing(g_s, sink, f=min(0.45, f))
            # F_S: vertices with more than half their messages undelivered.
            per_vertex: dict[Hashable, int] = {}
            for (v, _i) in outcome.delivered:
                per_vertex[v] = per_vertex.get(v, 0) + 1
            failed = {
                u
                for u in members
                if u != sink
                and per_vertex.get(u, 0) < g_s.degree[u] / 2.0
            }
            members = members - failed
            parts.extend({u} for u in failed)
            measured = 8 * outcome.rounds  # the paper's ×8 repetition
        else:
            measured = _analytic_gather_rounds(g_s, "load_balancing")
        routing_rounds = max(routing_rounds, measured)
        group = RoutingGroup(
            nodes=frozenset(g_s.nodes),
            edges=frozenset(frozenset(e) for e in g_s.edges),
            sink=sink,
            measured_rounds=measured,
            backend="load_balancing" if measure_routing else "analytic",
        )
        if not members:
            continue
        # Step 3: KPR diameter reduction inside G[members].
        inner = kpr_low_diameter_decomposition(
            subgraph.subgraph(members), epsilon / 4.0
        )
        for piece in inner.clusters().values():
            index = len(parts)
            parts.append(set(piece))
            if len(piece) > 1:
                groups[index] = group
    return {"parts": parts, "groups": groups, "routing_rounds": routing_rounds}


def local_edt_lemma52(
    subgraph: nx.Graph,
    epsilon: float,
    measure_routing: bool = False,
) -> dict:
    """Lemma 5.2 construction: Fact 3.1 clusters + one shared walk schedule.

    Same return shape as :func:`local_edt_lemma51`.  The shared schedule's
    bit length is recorded on each routing group (the part of B_v that is
    identical for all vertices).
    """
    if not 0 < epsilon <= 1:
        raise ValueError("epsilon must lie in (0, 1]")
    if subgraph.number_of_edges() == 0:
        return {
            "parts": [{v} for v in subgraph.nodes],
            "groups": {},
            "routing_rounds": 0,
        }
    clustering, phi = expander_decomposition_fact31(subgraph, epsilon / 4.0)

    # Step 1: expel weakly attached vertices (deg_{G[S]}(u) ≤ deg(u)/4).
    refined: list[set] = []
    for members in clustering.clusters().values():
        members = set(members)
        if len(members) > 1:
            induced = subgraph.subgraph(members)
            expelled = {
                u for u in members if induced.degree[u] <= subgraph.degree[u] / 4.0
            }
            members -= expelled
            refined.extend({u} for u in expelled)
        if members:
            refined.append(members)

    multi = [members for members in refined if len(members) > 1]
    singles = [members for members in refined if len(members) == 1]
    parts: list[set] = list(singles)
    groups: dict[int, RoutingGroup] = {}
    routing_rounds = 0
    schedule_bits = 0

    cluster_graphs = [subgraph.subgraph(members).copy() for members in multi]
    sinks = [_max_degree_vertex(g) for g in cluster_graphs]
    delivered_sets: list[set] | None = None
    if measure_routing and cluster_graphs:
        from repro.gathering.random_walks import find_shared_walk_schedule

        f = min(0.45, max(1e-3, epsilon / 16.0))
        schedule, delivered_sets = find_shared_walk_schedule(
            cluster_graphs, sinks, f=f, phi_hint=max(phi, 0.05)
        )
        routing_rounds = 8 * schedule.execution_rounds()
        schedule_bits = schedule.schedule_bits

    for idx, (members, g_i, sink) in enumerate(zip(multi, cluster_graphs, sinks)):
        members = set(members)
        if delivered_sets is not None:
            per_vertex: dict[Hashable, int] = {}
            for (v, _i) in delivered_sets[idx]:
                per_vertex[v] = per_vertex.get(v, 0) + 1
            failed = {
                u
                for u in members
                if u != sink and per_vertex.get(u, 0) < g_i.degree[u] / 2.0
            }
            members -= failed
            parts.extend({u} for u in failed)
            measured = routing_rounds
        else:
            measured = _analytic_gather_rounds(g_i, "walks")
            routing_rounds = max(routing_rounds, measured)
        group = RoutingGroup(
            nodes=frozenset(g_i.nodes),
            edges=frozenset(frozenset(e) for e in g_i.edges),
            sink=sink,
            measured_rounds=measured,
            schedule_bits=schedule_bits,
            backend="walks" if measure_routing else "analytic",
        )
        if not members:
            continue
        inner = kpr_low_diameter_decomposition(
            subgraph.subgraph(members), epsilon / 4.0
        )
        for piece in inner.clusters().values():
            index = len(parts)
            parts.append(set(piece))
            if len(piece) > 1:
                groups[index] = group
    return {"parts": parts, "groups": groups, "routing_rounds": routing_rounds}


# ---------------------------------------------------------------------------
# Global refinement operators — Section 5.2
# ---------------------------------------------------------------------------
def trivial_decomposition(graph: nx.Graph) -> EDTDecomposition:
    """The (1, 0, 0)-decomposition: every vertex a singleton, its own leader."""
    clustering = Clustering.singletons(graph)
    leaders = {v: v for v in graph.nodes}
    return EDTDecomposition(clustering=clustering, leaders=leaders)


def refine_merge(
    graph: nx.Graph,
    decomposition: EDTDecomposition,
    epsilon_threshold: float,
    alpha: int,
) -> EDTDecomposition:
    """Lemma 5.3: one heavy-stars merge round on the cluster graph.

    Light links are dropped when |E(S, C_Q)| ≤ ε/(32α) · vol(S) (volume of
    the *member set*, per the Lemma); satellites adopt the center's id and
    leader; the new routing is the composition (satellite groups, then the
    center's), so the merged cluster's group list concatenates them.
    """
    clustering = decomposition.clustering
    assignment = clustering.assignment
    cluster_graph = build_cluster_graph(graph, assignment)
    if cluster_graph.number_of_edges() == 0:
        return decomposition
    stars_result = heavy_stars(cluster_graph)

    members = clustering.clusters()
    threshold = epsilon_threshold / (32.0 * alpha)
    stats = GraphStats.for_graph(graph)

    def crossing_weight(a: Hashable, b: Hashable) -> int:
        return cluster_graph[a][b]["weight"] if cluster_graph.has_edge(a, b) else 0

    star_of: dict[Hashable, Hashable] = {}
    for center, satellites in stars_result.stars.items():
        for satellite in satellites:
            volume_s = stats.volume(members[satellite])
            if crossing_weight(center, satellite) <= threshold * volume_s:
                continue  # light link removed — S stays its own cluster
            star_of[satellite] = center

    new_assignment = {
        v: star_of.get(cluster, cluster) for v, cluster in assignment.items()
    }
    new_clustering = Clustering(new_assignment)
    new_leaders: dict = {}
    new_groups: dict = {}
    for cluster_id in set(new_assignment.values()):
        new_leaders[cluster_id] = decomposition.leaders[cluster_id]
        merged_groups = list(decomposition.groups.get(cluster_id, []))
        for satellite, center in star_of.items():
            if center == cluster_id:
                merged_groups.extend(decomposition.groups.get(satellite, []))
        if merged_groups:
            new_groups[cluster_id] = merged_groups

    ledger = decomposition.ledger
    d_hat = _max_cluster_diameter_estimate(graph, new_clustering)
    t_old = decomposition.routing_rounds
    ledger.charge("lemma53.heavy_stars", (d_hat + 1) * (stars_result.coloring_rounds + 4))
    ledger.charge("lemma53.steps34", 2 * (d_hat + 1))
    new_t = math.ceil((t_old + 1) / max(epsilon_threshold, 1e-9))
    return EDTDecomposition(
        clustering=new_clustering,
        leaders=new_leaders,
        groups=new_groups,
        ledger=ledger,
        routing_rounds=new_t,
    )


def _max_cluster_diameter_estimate(graph: nx.Graph, clustering: Clustering) -> int:
    estimate = 0
    for cluster_members in clustering.clusters().values():
        if len(cluster_members) <= 1:
            continue
        sub = graph.subgraph(cluster_members)
        if not nx.is_connected(sub):
            estimate = max(estimate, len(cluster_members))
            continue
        start = min(sub.nodes, key=repr)
        lengths = nx.single_source_shortest_path_length(sub, start)
        far = max(lengths, key=lambda v: (lengths[v], repr(v)))
        lengths2 = nx.single_source_shortest_path_length(sub, far)
        estimate = max(estimate, max(lengths2.values()))
    return estimate


def refine_local(
    graph: nx.Graph,
    decomposition: EDTDecomposition,
    epsilon: float,
    alpha: int,
    variant: str = "52",
    measure_routing: bool = False,
) -> EDTDecomposition:
    """Lemmas 5.4/5.5: leader-local recomputation inside every cluster.

    Each leader gathers its cluster topology (cost O(T), charged) and
    locally computes a fresh (ε*, D*, T*)-decomposition with ε* = ε/(32α)
    via Lemma 5.1 (``variant='51'``) or Lemma 5.2 (``variant='52'``).
    """
    if variant not in ("51", "52"):
        raise ValueError("variant must be '51' or '52'")
    epsilon_star = epsilon / (32.0 * alpha)
    members = decomposition.clustering.clusters()
    new_assignment: dict = {}
    new_leaders: dict = {}
    new_groups: dict = {}
    next_id = 0
    routing_rounds = 0
    for cluster_id, vertex_set in members.items():
        sub = graph.subgraph(vertex_set).copy()
        if sub.number_of_edges() == 0:
            for v in vertex_set:
                new_assignment[v] = next_id
                new_leaders[next_id] = v
                next_id += 1
            continue
        if variant == "51":
            local = local_edt_lemma51(
                sub, epsilon_star, alpha=alpha, measure_routing=measure_routing
            )
        else:
            local = local_edt_lemma52(
                sub, epsilon_star, measure_routing=measure_routing
            )
        routing_rounds = max(routing_rounds, local["routing_rounds"])
        for part_index, part in enumerate(local["parts"]):
            cluster_new = next_id
            next_id += 1
            for v in part:
                new_assignment[v] = cluster_new
            group = local["groups"].get(part_index)
            if group is not None:
                new_groups[cluster_new] = [group]
                new_leaders[cluster_new] = group.sink
            else:
                new_leaders[cluster_new] = min(part, key=repr)
    ledger = decomposition.ledger
    t_old = decomposition.routing_rounds
    label = "lemma54" if variant == "51" else "lemma55"
    if variant == "51":
        ledger.charge(
            f"{label}.gather_and_distribute",
            max(1, math.ceil((t_old + 1) * math.log2(max(2, 1 / epsilon)))),
        )
    else:
        d_hat = _max_cluster_diameter_estimate(graph, decomposition.clustering)
        ledger.charge(
            f"{label}.gather_and_distribute", t_old + routing_rounds + d_hat + 1
        )
    return EDTDecomposition(
        clustering=Clustering(new_assignment),
        leaders=new_leaders,
        groups=new_groups,
        ledger=ledger,
        routing_rounds=routing_rounds,
    )


# ---------------------------------------------------------------------------
# Theorem 1.1 driver
# ---------------------------------------------------------------------------
def edt_decomposition(
    graph: nx.Graph,
    epsilon: float,
    variant: str = "52",
    alpha: int | None = None,
    measure_routing: bool = False,
    max_outer_iterations: int | None = None,
) -> EDTDecomposition:
    """Theorem 1.1: build an (ε, D, T)-decomposition of an H-minor-free G.

    Alternates Lemma 5.3 merges with Lemma 5.4/5.5 local refinement
    starting from the trivial decomposition, until the measured cut
    fraction is ≤ ε.  ``variant`` picks the T regime of Theorem 1.1:
    ``'51'`` → T = 2^O(log² 1/ε)·O(log Δ) (Lemma 5.4 path);
    ``'52'`` → T = poly(1/ε, log Δ) (Lemma 5.5 path).

    The ledger charges measured primitive costs throughout; with
    ``measure_routing`` the final T is additionally *executed* by the
    gather backend on every routing group.
    """
    if not 0 < epsilon < 1:
        raise ValueError("epsilon must lie in (0, 1)")
    if alpha is None:
        alpha = max(1, GraphStats.for_graph(graph).degeneracy)
    if max_outer_iterations is None:
        shrink = 1.0 - 1.0 / (16.0 * alpha)
        max_outer_iterations = max(
            2, 2 * math.ceil(math.log(epsilon) / math.log(shrink))
        )
    decomposition = trivial_decomposition(graph)
    if graph.number_of_edges() == 0:
        return decomposition
    epsilon_current = 1.0
    for _outer in range(max_outer_iterations):
        measured = decomposition.epsilon(graph)
        if measured <= epsilon:
            break
        epsilon_current = min(epsilon_current, measured)
        decomposition = refine_merge(
            graph, decomposition, epsilon_threshold=max(epsilon, epsilon_current), alpha=alpha
        )
        decomposition = refine_local(
            graph,
            decomposition,
            epsilon=epsilon,
            alpha=alpha,
            variant=variant,
            measure_routing=False,
        )
    if measure_routing:
        run_gather_on_groups(graph, decomposition)
    return decomposition


def run_gather_on_groups(
    graph: nx.Graph,
    decomposition: EDTDecomposition,
    f: float = 0.2,
    backend: str | None = None,
) -> int:
    """Execute the routing algorithm A on every distinct routing group.

    Deduplicates shared groups, runs the gather backend (the group's own,
    or ``backend`` override), multiplies by the paper's ×8 repetition, and
    records the max as the decomposition's measured T.  Returns T.
    """
    seen: dict[tuple, int] = {}
    worst = 0
    for groups in decomposition.groups.values():
        for group in groups:
            key = (group.nodes, group.edges, group.sink)
            if key in seen:
                continue
            sub = group.subgraph()
            if sub.number_of_edges() == 0:
                seen[key] = 0
                continue
            chosen = backend or group.backend
            if chosen in ("analytic", "load_balancing"):
                from repro.gathering.load_balancing import (
                    gather_with_load_balancing,
                )

                outcome = gather_with_load_balancing(sub, group.sink, f=f)
                rounds = 8 * outcome.rounds
            else:
                from repro.gathering.random_walks import gather_with_random_walks

                _, exec_rounds, _ = gather_with_random_walks(
                    sub, group.sink, f=f, phi_hint=0.1
                )
                rounds = 8 * exec_rounds
            group.measured_rounds = rounds
            seen[key] = rounds
            worst = max(worst, rounds)
    decomposition.routing_rounds = worst
    return worst
