"""The heavy-stars algorithm of Czygrinow, Hańćkowiak, and Wawrzyniak
(Section 4.1), used by every merging phase in the paper.

Input: a weighted graph (in the paper: a *cluster graph*; here any
``networkx.Graph`` with a ``weight`` attribute, default weight 1).

Output: a set of vertex-disjoint stars capturing ≥ 1/(8α) of the total
edge weight, where α bounds the arboricity (Lemma 4.2).

The four steps, implemented exactly as in the paper:

1. *Edge orientation* — every vertex u picks its heaviest incident edge
   (ties: maximize ID(u) + ID(v), then the higher single ID — a total
   order, so the picked edges form no directed cycles beyond mutual picks,
   which are collapsed to a single orientation).  Each vertex has
   out-degree ≤ 1, so the oriented edges form rooted trees {T_i}.
2. *Vertex colouring* — a proper 3-colouring of each rooted tree by
   Cole–Vishkin (our genuine CONGEST implementation; the measured rounds
   are surfaced so the ledger can charge O(D · log* n)).
3. *Low-diameter clustering* — the marking rules on colour classes 1 and
   2 (the paper's in/out marking), leaving rooted trees {Q_i} of depth ≤ 4
   (Lemma 4.3).
4. *Star formation* — inside each Q_i keep the heavier of the
   odd-level→even-level / even-level→odd-level edge sets; both choices are
   vertex-disjoint stars, and the heavier captures ≥ half of w(Q_i).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

import networkx as nx

from repro.congest.algorithms import cole_vishkin_forest_coloring


@dataclass
class HeavyStarsResult:
    """Stars plus the diagnostics the ledger and the tests need.

    ``stars`` maps each star center to the list of its satellites (every
    vertex appears in at most one star, as center xor satellite);
    ``captured_weight`` / ``total_weight`` give the Lemma 4.2 ratio;
    ``coloring_rounds`` is the measured Cole–Vishkin cost (in cluster-graph
    rounds).
    """

    stars: dict = field(default_factory=dict)
    parents: dict = field(default_factory=dict)
    colors: dict = field(default_factory=dict)
    captured_weight: float = 0.0
    total_weight: float = 0.0
    coloring_rounds: int = 0

    @property
    def captured_fraction(self) -> float:
        if self.total_weight == 0:
            return 1.0
        return self.captured_weight / self.total_weight

    def star_of(self) -> dict:
        """{vertex: star_center} for every vertex covered by some star."""
        out = {}
        for center, satellites in self.stars.items():
            out[center] = center
            for satellite in satellites:
                out[satellite] = center
        return out


def _edge_weight(graph: nx.Graph, u: Hashable, v: Hashable) -> float:
    return graph[u][v].get("weight", 1)


def heavy_stars(graph: nx.Graph) -> HeavyStarsResult:
    """Run the CHW08 heavy-stars algorithm; see the module docstring.

    Deterministic.  Isolated vertices are ignored.  IDs for tie-breaking
    are the ranks of vertices under ``repr`` order (a stand-in for the
    O(log n)-bit identifiers of the model).
    """
    result = HeavyStarsResult()
    result.total_weight = sum(
        _edge_weight(graph, u, v) for u, v in graph.edges
    )
    if graph.number_of_edges() == 0:
        return result
    ids = {v: i for i, v in enumerate(sorted(graph.nodes, key=repr))}

    # ---- Step 1: edge orientation ----------------------------------------
    def pick_key(u: Hashable, v: Hashable) -> tuple:
        return (_edge_weight(graph, u, v), ids[u] + ids[v], max(ids[u], ids[v]))

    picked: dict[Hashable, Hashable] = {}
    for u in graph.nodes:
        neighbors = list(graph.neighbors(u))
        if not neighbors:
            continue
        picked[u] = max(neighbors, key=lambda v: pick_key(u, v))

    parents: dict[Hashable, Hashable | None] = {v: None for v in graph.nodes}
    for u, v in picked.items():
        if picked.get(v) == u:
            # Mutual pick: orient from the smaller id to the larger; the
            # larger becomes (part of) the root side.
            if ids[u] < ids[v]:
                parents[u] = v
        else:
            parents[u] = v
    _assert_acyclic(parents)

    # ---- Step 2: Cole–Vishkin 3-colouring of the rooted forest -----------
    colors, metrics = cole_vishkin_forest_coloring(graph, parents)
    result.parents = dict(parents)
    result.colors = dict(colors)
    result.coloring_rounds = metrics.rounds

    # ---- Step 3: marking --------------------------------------------------
    # Children lists under the orientation.
    children: dict[Hashable, list] = {v: [] for v in graph.nodes}
    for u, p in parents.items():
        if p is not None:
            children[p].append(u)

    def weight_to_parent(u: Hashable, color_set: set[int]) -> float:
        p = parents[u]
        if p is not None and colors[p] in color_set:
            return _edge_weight(graph, u, p)
        return 0.0

    def child_edges(u: Hashable, color_set: set[int]) -> list[tuple]:
        return [(c, u) for c in children[u] if colors[c] in color_set]

    marked: set[frozenset] = set()
    for u in graph.nodes:
        # Colours are {0, 1, 2}; the paper's classes 1/2/3 map to 0/1/2.
        if colors[u] == 0:
            color_set = {1, 2}
        elif colors[u] == 1:
            color_set = {2}
        else:
            continue
        incoming = child_edges(u, color_set)
        incoming_weight = sum(_edge_weight(graph, a, b) for a, b in incoming)
        outgoing_weight = weight_to_parent(u, color_set)
        if incoming_weight >= outgoing_weight:
            for a, b in incoming:
                marked.add(frozenset((a, b)))
        elif parents[u] is not None:
            marked.add(frozenset((u, parents[u])))

    # ---- Step 4: star formation inside each marked tree Q_i ---------------
    marked_children: dict[Hashable, list] = {v: [] for v in graph.nodes}
    marked_parent: dict[Hashable, Hashable | None] = {v: None for v in graph.nodes}
    for u, p in parents.items():
        if p is not None and frozenset((u, p)) in marked:
            marked_children[p].append(u)
            marked_parent[u] = p
    _assert_depth_at_most(marked_parent, 4)

    roots = [v for v in graph.nodes if marked_parent[v] is None]
    depth: dict[Hashable, int] = {}
    order: list[Hashable] = []
    for root in roots:
        depth[root] = 0
        queue = [root]
        while queue:
            u = queue.pop()
            order.append(u)
            for c in marked_children[u]:
                depth[c] = depth[u] + 1
                queue.append(c)

    def level_edges(parity: int) -> list[tuple]:
        return [
            (u, marked_parent[u])
            for u in graph.nodes
            if marked_parent[u] is not None and depth[marked_parent[u]] % 2 == parity
        ]

    even_edges = level_edges(0)
    odd_edges = level_edges(1)
    even_weight = sum(_edge_weight(graph, a, b) for a, b in even_edges)
    odd_weight = sum(_edge_weight(graph, a, b) for a, b in odd_edges)
    chosen = even_edges if even_weight >= odd_weight else odd_edges
    result.captured_weight = max(even_weight, odd_weight)

    stars: dict[Hashable, list] = {}
    for child, parent in chosen:
        stars.setdefault(parent, []).append(child)
    result.stars = stars
    return result


def _assert_acyclic(parents: dict) -> None:
    """The orientation of Step 1 must be a forest; fail loudly otherwise."""
    state: dict[Hashable, int] = {}
    for start in parents:
        path = []
        u = start
        while u is not None and state.get(u, 0) == 0:
            state[u] = 1
            path.append(u)
            u = parents[u]
        if u is not None and state.get(u) == 1:
            raise AssertionError(f"orientation cycle through {u!r}")
        for v in path:
            state[v] = 2


def _assert_depth_at_most(marked_parent: dict, limit: int) -> None:
    """Lemma 4.3: the marked trees have depth ≤ 4."""
    memo: dict[Hashable, int] = {}

    def depth_of(u: Hashable) -> int:
        if u in memo:
            return memo[u]
        p = marked_parent[u]
        memo[u] = 0 if p is None else depth_of(p) + 1
        return memo[u]

    for u in marked_parent:
        if depth_of(u) > limit:
            raise AssertionError(
                f"marked tree depth {depth_of(u)} exceeds {limit} at {u!r}"
            )
