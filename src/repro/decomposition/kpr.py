"""KPR-style low-diameter decomposition (Lemma 3.1): (ε, O(1/ε)) on
H-minor-free graphs.

The classical Klein–Plotkin–Rao scheme [KPR93, FT03, AGG+19]: recursively
chop the graph into BFS *bands* of width w = Θ(depth/ε); after ``depth``
levels (depth = O(|V(H)|) suffices for H-minor-free inputs) the pieces
have diameter O(w) and the chopping cut at most depth/w ≤ ε/2 of the
edges.  Our implementation is deterministic: at each level it tries every
band offset in 0..w−1 and keeps the one cutting the fewest edges (the
averaging argument guarantees some offset cuts ≤ 1/w of the level's
edges).

Because the strong-diameter constant of the KPR analysis is delicate, the
implementation finishes with an *enforcement* sweep: any piece whose
induced diameter still exceeds the target is band-chopped again (each chop
strictly splits the piece, so the sweep terminates).  On the H-minor-free
families we evaluate, enforcement fires rarely and the measured total cut
stays within ε — the validation in the tests asserts exactly that.  This
is run as leader-local computation in the paper (Lemma 3.1 is only ever
applied to an already-gathered topology), so only the output quality
matters, not the step count.
"""

from __future__ import annotations

import math
from typing import Hashable

import networkx as nx

from repro.decomposition.types import Clustering


def _bfs_layers(graph: nx.Graph, root: Hashable) -> dict:
    """{vertex: BFS depth from root} for the component containing root."""
    return {
        v: depth
        for depth, layer in enumerate(nx.bfs_layers(graph, [root]))
        for v in layer
    }


def _best_band_split(graph: nx.Graph, width: int) -> list[set]:
    """Chop one connected graph into BFS bands of ``width`` layers.

    Tries all offsets and keeps the cheapest; bands are returned as vertex
    sets (possibly internally disconnected — connectivity is restored by
    the component split in the recursion).
    """
    root = min(graph.nodes, key=repr)
    layers = _bfs_layers(graph, root)
    max_layer = max(layers.values())
    if max_layer < width:
        return [set(graph.nodes)]

    def bands_for(offset: int) -> dict:
        # Band index of layer L: first band has `offset` layers (offset>0),
        # subsequent bands have `width` layers.
        return {
            v: 0 if level < offset else (level - offset) // width + 1
            for v, level in layers.items()
        }

    best_offset, best_cut = 0, math.inf
    for offset in range(width):
        banding = bands_for(offset)
        cut = sum(1 for u, v in graph.edges if banding[u] != banding[v])
        if cut < best_cut:
            best_offset, best_cut = offset, cut
    banding = bands_for(best_offset)
    groups: dict = {}
    for v, band in banding.items():
        groups.setdefault(band, set()).add(v)
    return list(groups.values())


def kpr_low_diameter_decomposition(
    graph: nx.Graph,
    epsilon: float,
    depth: int = 3,
    diameter_slack: float = 4.0,
) -> Clustering:
    """(ε, O(1/ε)) low-diameter decomposition of an H-minor-free graph.

    Parameters
    ----------
    epsilon:
        Target inter-cluster edge fraction.
    depth:
        Chopping levels; 3 suffices for planar-like families (the KPR
        analysis uses the number of vertices of the forbidden minor H).
    diameter_slack:
        Enforcement threshold: pieces must reach induced diameter ≤
        ``diameter_slack · depth · width``; larger slack means fewer extra
        cuts.

    Returns a :class:`Clustering` whose measured cut fraction and diameter
    are validated by the caller/tests (Lemma 3.1's guarantee for genuinely
    H-minor-free inputs).
    """
    if not 0 < epsilon <= 1:
        raise ValueError("epsilon must lie in (0, 1]")
    if graph.number_of_nodes() == 0:
        return Clustering({})
    width = max(1, math.ceil(2 * depth / epsilon))
    target_diameter = max(1, math.floor(diameter_slack * depth * width))

    pieces: list[set] = [
        set(component) for component in nx.connected_components(graph)
    ]
    for _level in range(depth):
        next_pieces: list[set] = []
        for piece in pieces:
            sub = graph.subgraph(piece)
            if sub.number_of_nodes() <= 1:
                next_pieces.append(piece)
                continue
            for band in _best_band_split(sub, width):
                band_sub = graph.subgraph(band)
                for component in nx.connected_components(band_sub):
                    next_pieces.append(set(component))
        pieces = next_pieces

    # Enforcement sweep: re-chop any piece whose induced diameter is still
    # above the target (terminates: every chop splits the piece).
    final: list[set] = []
    stack = pieces
    while stack:
        piece = stack.pop()
        sub = graph.subgraph(piece)
        if sub.number_of_nodes() <= 1:
            final.append(piece)
            continue
        ecc_source = min(piece, key=repr)
        # Cheap diameter estimate (double BFS: a lower bound within 2x).
        far, _ = _farthest(sub, ecc_source)
        _, estimate = _farthest(sub, far)
        if estimate <= target_diameter:
            final.append(piece)
            continue
        bands = _best_band_split(sub, width)
        if len(bands) == 1:
            # The band width exceeds the BFS eccentricity yet the diameter
            # still misses the target (e.g. long thin pieces).  Chop from
            # the *far* endpoint with half the eccentricity: ≥ 2 non-empty
            # bands, so the sweep always makes progress.
            lengths = nx.single_source_shortest_path_length(sub, far)
            half = max(1, max(lengths.values()) // 2)
            near = {v for v, level in lengths.items() if level < half}
            bands = [near, set(sub.nodes) - near]
        for band in bands:
            band_sub = graph.subgraph(band)
            for component in nx.connected_components(band_sub):
                stack.append(set(component))
    return Clustering.from_sets(final)


def _farthest(graph: nx.Graph, source: Hashable) -> tuple[Hashable, int]:
    lengths = nx.single_source_shortest_path_length(graph, source)
    far = max(lengths, key=lambda v: (lengths[v], repr(v)))
    return far, lengths[far]
