"""Expander decompositions with overlaps (Section 4.2, Lemmas 4.1–4.7).

The algorithm iterates the merging round of Lemma 4.4, starting from the
trivial (1, 1, 1) decomposition where every vertex is a singleton cluster
with an empty associated subgraph:

Step 1 — *creating singleton clusters*: inside every non-singleton
cluster S, vertices u with deg_{G_S}(u) ≤ deg_G(u)/(34α) are expelled into
fresh singleton clusters (their old G_S keeps them — that is where the
overlap comes from, and why c grows by at most 1 per round).

Step 2 — *creating heavy stars*: the heavy-stars algorithm on the cluster
graph weighted by crossing-edge counts.

Step 3 — *removing light links*: a satellite S is dropped from its star
when |E(S, C_Q)| ≤ ε/(64α(c+1)) · vol_G(V(G_S)) — the refinement that
keeps merged clusters' conductance from collapsing (Lemma 4.5).

Step 4 — *contracting stars*: merged member set = union of member sets;
merged subgraph = union of the G_S plus all inter-cluster edges between
the star's clusters.

After t = O(log 1/ε) rounds the cut fraction is ≤ ε, each G_S is a
φ-expander with φ = 2^(−O(log² 1/ε)), and the overlap is c = t + 1 =
O(log 1/ε) (Lemma 4.1).

The ledger charges each round with measured quantities, following the
paper's "Distributed implementation" paragraph: Steps 1/3/4 cost O(c·D̂)
with D̂ the measured max G_S diameter; heavy-stars costs O(c·D̂) ×
(measured Cole–Vishkin rounds) plus the Lemma 2.2 routing estimate
O(φ̂⁻⁴ log³ m̂) with measured per-round conductance φ̂.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Hashable

import networkx as nx

from repro.congest.metrics import RoundLedger
from repro.decomposition.heavy_stars import heavy_stars
from repro.decomposition.types import OverlapCluster, OverlapDecomposition
from repro.graphs.cluster_graph import build_cluster_graph
from repro.graphs.conductance import conductance
from repro.graphs.stats import GraphStats


@dataclass
class _MutableCluster:
    """Internal working representation of one overlap cluster."""

    members: set
    nodes: set
    edges: set  # of frozenset pairs

    def degree_in_subgraph(self, vertex: Hashable) -> int:
        return sum(1 for e in self.edges if vertex in e)

    def freeze(self) -> OverlapCluster:
        return OverlapCluster(
            members=frozenset(self.members),
            subgraph_nodes=frozenset(self.nodes),
            subgraph_edges=frozenset(self.edges),
        )


@dataclass
class OverlapRunStats:
    """Per-round diagnostics returned alongside the decomposition."""

    rounds: list = field(default_factory=list)
    ledger: RoundLedger = field(default_factory=RoundLedger)
    iterations: int = 0
    final_cut_fraction: float = 1.0
    min_conductance: float = math.inf
    max_overlap: int = 1


def _double_sweep_diameter(graph: nx.Graph) -> int:
    """Cheap diameter lower-bound estimate (double BFS) used by the ledger."""
    if graph.number_of_nodes() <= 1 or graph.number_of_edges() == 0:
        return 0
    if not nx.is_connected(graph):
        return graph.number_of_nodes()
    start = min(graph.nodes, key=repr)
    lengths = nx.single_source_shortest_path_length(graph, start)
    far = max(lengths, key=lambda v: (lengths[v], repr(v)))
    lengths2 = nx.single_source_shortest_path_length(graph, far)
    return max(lengths2.values())


def lemma44_round(
    graph: nx.Graph,
    clusters: list[_MutableCluster],
    epsilon: float,
    alpha: int,
    c: int,
    light_link_removal: bool = True,
    light_link_constant: float = 1.0,
) -> tuple[list[_MutableCluster], dict]:
    """One merging round (the algorithm of Lemma 4.4).  Returns the new
    cluster list and round diagnostics."""
    # ---- Step 1: creating singleton clusters ------------------------------
    stats = GraphStats.for_graph(graph)
    degree = stats.degree
    threshold_ratio = 1.0 / (34.0 * alpha)
    new_singletons: list[_MutableCluster] = []
    for cluster in clusters:
        if len(cluster.members) <= 1:
            continue
        # One pass over E(G_S) builds every member's subgraph degree; the
        # seed's per-vertex degree_in_subgraph scan was O(|S|·|E_S|).
        sub_degree: dict[Hashable, int] = {}
        for edge in cluster.edges:
            for x in edge:
                sub_degree[x] = sub_degree.get(x, 0) + 1
        expelled = [
            u
            for u in cluster.members
            if sub_degree.get(u, 0) <= threshold_ratio * degree[u]
        ]
        for u in expelled:
            cluster.members.discard(u)
            # u remains in cluster.nodes (the overlap); its new singleton
            # cluster has the trivial subgraph G[{u}].
            new_singletons.append(
                _MutableCluster(members={u}, nodes={u}, edges=set())
            )
    clusters = [c_ for c_ in clusters if c_.members] + new_singletons

    # ---- Step 2: heavy stars on the cluster graph -------------------------
    assignment: dict[Hashable, int] = {}
    for index, cluster in enumerate(clusters):
        for v in cluster.members:
            assignment[v] = index
    cluster_graph = build_cluster_graph(graph, assignment)
    stars_result = heavy_stars(cluster_graph)

    # ---- Step 3: removing light links --------------------------------------
    # (skipped in the ablation mode: the paper's Lemma 4.5 conductance
    # argument then breaks, which bench_expander_decomposition demonstrates)
    # ``light_link_constant`` scales the paper's threshold (1.0 = paper);
    # the benchmarks sweep it to demonstrate the conductance/cut tradeoff.
    light_threshold = (
        light_link_constant * epsilon / (64.0 * alpha * (c + 1))
        if light_link_removal
        else 0.0
    )
    crossing: dict[tuple[int, int], int] = {}
    for u, v in graph.edges:
        a, b = assignment[u], assignment[v]
        if a != b:
            key = (min(a, b), max(a, b))
            crossing[key] = crossing.get(key, 0) + 1

    surviving_stars: dict[int, list[int]] = {}
    removed_links = 0
    for center, satellites in stars_result.stars.items():
        kept = []
        for satellite in satellites:
            key = (min(center, satellite), max(center, satellite))
            volume_s = stats.volume(clusters[satellite].nodes)
            if crossing.get(key, 0) <= light_threshold * volume_s:
                removed_links += crossing.get(key, 0)
                continue
            kept.append(satellite)
        if kept:
            surviving_stars[center] = kept

    # ---- Step 4: contracting stars ----------------------------------------
    merged_away: set[int] = set()
    merged_clusters: list[_MutableCluster] = []
    for center, satellites in surviving_stars.items():
        group = [center, *satellites]
        merged_away.update(group)
        members = set().union(*(clusters[i].members for i in group))
        nodes = set().union(*(clusters[i].nodes for i in group))
        edges = set().union(*(clusters[i].edges for i in group))
        group_set = set(group)
        for u, v in graph.edges:
            a, b = assignment[u], assignment[v]
            if a != b and a in group_set and b in group_set:
                edges.add(frozenset((u, v)))
        merged_clusters.append(
            _MutableCluster(members=members, nodes=nodes, edges=edges)
        )
    untouched = [
        cluster for i, cluster in enumerate(clusters) if i not in merged_away
    ]
    info = {
        "stars": len(surviving_stars),
        "captured_fraction": stars_result.captured_fraction,
        "coloring_rounds": stars_result.coloring_rounds,
        "light_links_removed": removed_links,
        "singletons_created": len(new_singletons),
    }
    return untouched + merged_clusters, info


def overlap_expander_decomposition(
    graph: nx.Graph,
    epsilon: float,
    alpha: int | None = None,
    max_iterations: int | None = None,
    measure_conductance: bool = True,
    light_link_removal: bool = True,
    light_link_constant: float = 1.0,
) -> tuple[OverlapDecomposition, OverlapRunStats]:
    """Lemma 4.1: an (ε, φ, c) expander decomposition with overlaps,
    φ = 2^(−O(log² 1/ε)) and c = O(log 1/ε), of an H-minor-free graph.

    Runs Lemma 4.4 rounds until the measured cut fraction is ≤ ε (at most
    the paper's t = O(log 1/ε), scaled by the measured heavy-stars capture
    fraction, which is typically far better than the worst-case 1/(8α)).

    Returns ``(decomposition, stats)``; ``stats.ledger`` carries the
    measured CONGEST construction cost, ``stats.min_conductance`` the
    measured min Φ(G_S) over final non-singleton clusters.
    """
    if not 0 < epsilon <= 1:
        raise ValueError("epsilon must lie in (0, 1]")
    if alpha is None:
        alpha = max(1, GraphStats.for_graph(graph).degeneracy)
    stats = OverlapRunStats()
    m = graph.number_of_edges()
    clusters = [
        _MutableCluster(members={v}, nodes={v}, edges=set()) for v in graph.nodes
    ]
    if m == 0:
        decomposition = OverlapDecomposition([c.freeze() for c in clusters])
        stats.final_cut_fraction = 0.0
        return decomposition, stats
    if max_iterations is None:
        shrink = 1.0 - 1.0 / (32.0 * alpha)
        max_iterations = max(1, 2 * math.ceil(math.log(epsilon) / math.log(shrink)))

    def cut_fraction() -> float:
        assignment = {}
        for index, cluster in enumerate(clusters):
            for v in cluster.members:
                assignment[v] = index
        crossing = sum(1 for u, v in graph.edges if assignment[u] != assignment[v])
        return crossing / m

    c = 1
    for iteration in range(1, max_iterations + 1):
        fraction = cut_fraction()
        if fraction <= epsilon:
            break
        clusters, info = lemma44_round(
            graph, clusters, epsilon, alpha, c,
            light_link_removal=light_link_removal,
            light_link_constant=light_link_constant,
        )
        c += 1
        stats.iterations = iteration
        diameter_estimate = 0
        phi_estimate = math.inf
        if measure_conductance:
            for cluster in clusters:
                if len(cluster.nodes) <= 1 or not cluster.edges:
                    continue
                sub = cluster.freeze().subgraph()
                diameter_estimate = max(
                    diameter_estimate, _double_sweep_diameter(sub)
                )
                phi_estimate = min(phi_estimate, conductance(sub))
        info["diameter_estimate"] = diameter_estimate
        info["phi_estimate"] = None if phi_estimate is math.inf else phi_estimate
        stats.rounds.append(info)
        # Ledger: the paper's implementation paragraph (end of §4.2).
        d_hat = max(1, diameter_estimate)
        stats.ledger.charge(
            f"overlap.round_{iteration}.steps134", 3 * c * (d_hat + 1)
        )
        stats.ledger.charge(
            f"overlap.round_{iteration}.heavy_stars",
            c * (d_hat + 1) * (info["coloring_rounds"] + 4),
        )
        if phi_estimate is not math.inf and phi_estimate > 0:
            m_hat = max(2, max(len(cl.edges) for cl in clusters))
            routing = math.ceil(
                (phi_estimate ** -4) * (math.log2(m_hat) ** 3)
            )
            stats.ledger.charge(
                f"overlap.round_{iteration}.routing", min(routing, 10 ** 9)
            )

    stats.final_cut_fraction = cut_fraction()
    stats.max_overlap = 1
    count: dict[Hashable, int] = {}
    final_clusters = [cluster.freeze() for cluster in clusters]
    for cluster in final_clusters:
        for v in cluster.subgraph_nodes:
            count[v] = count.get(v, 0) + 1
    stats.max_overlap = max(count.values(), default=1)
    if measure_conductance:
        worst = math.inf
        for cluster in final_clusters:
            if len(cluster.subgraph_nodes) <= 1 or not cluster.subgraph_edges:
                continue
            worst = min(worst, conductance(cluster.subgraph()))
        stats.min_conductance = worst
    return OverlapDecomposition(final_clusters), stats
