"""Data structures for the decompositions of Sections 3–5.

* :class:`Clustering` — a plain partition of V (low-diameter and expander
  decompositions).
* :class:`OverlapCluster` / :class:`OverlapDecomposition` — the Section 4.2
  variant: the member sets still partition V, but each cluster carries an
  associated subgraph G_S ⊇ G[S] and subgraphs may overlap (each vertex in
  at most c of them).
* :class:`RoutingGroup` / :class:`EDTDecomposition` — the paper's central
  object: a partition into diameter-≤D clusters, a leader v⋆_S per cluster
  (possibly outside the cluster, possibly shared), and a routing algorithm
  A delivering deg(v) messages from every v ∈ S to v⋆_S in T rounds in
  parallel.  The routing algorithm is realized by a *routing group*: the
  high-conductance subgraph the gather backend runs on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable, Mapping

import networkx as nx

from repro.congest.metrics import RoundLedger


@dataclass
class Clustering:
    """A partition of the vertex set, stored as ``{vertex: cluster_id}``."""

    assignment: dict

    @classmethod
    def singletons(cls, graph: nx.Graph) -> "Clustering":
        return cls({v: v for v in graph.nodes})

    @classmethod
    def from_sets(cls, sets: Iterable[Iterable[Hashable]]) -> "Clustering":
        assignment = {}
        for index, members in enumerate(sets):
            for v in members:
                if v in assignment:
                    raise ValueError(f"vertex {v!r} assigned twice")
                assignment[v] = index
        return cls(assignment)

    def clusters(self) -> dict:
        """``{cluster_id: set of member vertices}``."""
        out: dict = {}
        for v, cluster in self.assignment.items():
            out.setdefault(cluster, set()).add(v)
        return out

    def inter_cluster_edges(self, graph: nx.Graph) -> list[tuple]:
        return [
            (u, v)
            for u, v in graph.edges
            if self.assignment[u] != self.assignment[v]
        ]

    def cut_fraction(self, graph: nx.Graph) -> float:
        """Fraction of E crossing clusters (the ε of the decomposition)."""
        m = graph.number_of_edges()
        if m == 0:
            return 0.0
        return len(self.inter_cluster_edges(graph)) / m

    def relabel(self) -> "Clustering":
        """Normalize cluster ids to 0..k−1 (deterministic by member repr)."""
        clusters = self.clusters()
        order = sorted(clusters, key=lambda c: min(repr(v) for v in clusters[c]))
        mapping = {old: new for new, old in enumerate(order)}
        return Clustering({v: mapping[c] for v, c in self.assignment.items()})


@dataclass
class OverlapCluster:
    """One cluster of an (ε, φ, c) overlap decomposition (Section 4.2).

    ``members`` is the partition part S; ``subgraph_nodes`` /
    ``subgraph_edges`` describe the associated subgraph G_S, which must
    contain G[S] and may include vertices outside S (the overlap).
    """

    members: frozenset
    subgraph_nodes: frozenset
    subgraph_edges: frozenset  # of frozenset({u, v}) pairs

    def subgraph(self) -> nx.Graph:
        g = nx.Graph()
        g.add_nodes_from(self.subgraph_nodes)
        g.add_edges_from(tuple(e) for e in self.subgraph_edges)
        return g

    @staticmethod
    def from_graph(members: Iterable[Hashable], subgraph: nx.Graph) -> "OverlapCluster":
        return OverlapCluster(
            members=frozenset(members),
            subgraph_nodes=frozenset(subgraph.nodes),
            subgraph_edges=frozenset(frozenset(e) for e in subgraph.edges),
        )


@dataclass
class OverlapDecomposition:
    """An (ε, φ, c) expander decomposition with overlaps."""

    clusters: list[OverlapCluster]

    def assignment(self) -> dict:
        out: dict = {}
        for index, cluster in enumerate(self.clusters):
            for v in cluster.members:
                if v in out:
                    raise ValueError(f"member sets overlap at {v!r}")
                out[v] = index
        return out

    def clustering(self) -> Clustering:
        return Clustering(self.assignment())

    def cut_fraction(self, graph: nx.Graph) -> float:
        return self.clustering().cut_fraction(graph)

    def max_overlap(self) -> int:
        """c: max number of associated subgraphs any vertex belongs to."""
        count: dict = {}
        for cluster in self.clusters:
            for v in cluster.subgraph_nodes:
                count[v] = count.get(v, 0) + 1
        return max(count.values(), default=0)


@dataclass
class RoutingGroup:
    """The domain one gather execution runs on.

    ``nodes``/``edges`` describe the high-conductance subgraph (a G_S or a
    G[S]); ``sink`` is the max-degree vertex v⋆ messages are gathered to;
    ``measured_rounds`` is the backend's measured T contribution;
    ``schedule_bits`` the B_v routing-string cost (walk backend only).
    """

    nodes: frozenset
    edges: frozenset
    sink: Hashable
    measured_rounds: int = 0
    schedule_bits: int = 0
    backend: str = "analytic"

    def subgraph(self) -> nx.Graph:
        g = nx.Graph()
        g.add_nodes_from(self.nodes)
        g.add_edges_from(tuple(e) for e in self.edges)
        return g


@dataclass
class EDTDecomposition:
    """An (ε, D, T)-decomposition per Section 1.1.

    ``clustering`` partitions V; ``leaders[cluster_id]`` is v⋆_S (may lie
    outside S; several clusters may share one leader); ``groups`` maps each
    cluster id to the *list* of :class:`RoutingGroup` objects its routing
    algorithm A uses (one for a freshly decomposed cluster; several after
    Lemma 5.3 merges, whose A' forwards through the satellites' groups into
    the center's); ``ledger`` accumulates the construction round cost.
    ``routing_rounds`` (T) is the measured gather cost — 0 for
    singleton-only decompositions.
    """

    clustering: Clustering
    leaders: dict
    groups: dict = field(default_factory=dict)
    ledger: RoundLedger = field(default_factory=RoundLedger)
    routing_rounds: int = 0

    # -- decomposition parameters (measured) --------------------------------
    def epsilon(self, graph: nx.Graph) -> float:
        return self.clustering.cut_fraction(graph)

    def diameter(self, graph: nx.Graph) -> int:
        from repro.decomposition.validation import cluster_diameters

        diameters = cluster_diameters(graph, self.clustering)
        return max(diameters.values(), default=0)

    @property
    def construction_rounds(self) -> int:
        return self.ledger.total_rounds

    def cluster_members(self) -> dict:
        return self.clustering.clusters()

    def leader_of(self, vertex: Hashable) -> Hashable:
        return self.leaders[self.clustering.assignment[vertex]]


def induced_subgraph(graph: nx.Graph, vertices: Iterable[Hashable]) -> nx.Graph:
    """A *copy* of G[vertices] (so callers can mutate freely)."""
    return graph.subgraph(vertices).copy()


def assignment_from_mapping(mapping: Mapping[Hashable, Hashable]) -> Clustering:
    return Clustering(dict(mapping))
