"""Low-diameter decompositions built by cluster merging (Section 4.1) and
the randomized baseline.

* :func:`chw_low_diameter_decomposition` — the CHW08 LOCAL-model algorithm:
  start from singletons and run heavy-stars + star merging on the cluster
  graph for O(log 1/ε) iterations.  Each iteration multiplies the cluster
  diameter by ≤ 3 (+2) and reduces the inter-cluster weight by a
  (1 − 1/(8α)) factor, giving D = poly(1/ε) and the LOCAL round cost
  poly(1/ε)·O(log* n), which the ledger charges from *measured*
  quantities (current max diameter × measured Cole–Vishkin rounds).

* :func:`mpx_low_diameter_decomposition` — the classic randomized
  exponential-shift clustering [MPX13] used as the randomized-CONGEST
  baseline (D = O(ε⁻¹ log n), cut ≤ ε|E| in expectation).
"""

from __future__ import annotations

import math
import random
from typing import Hashable

import networkx as nx

from repro.congest.metrics import RoundLedger
from repro.decomposition.heavy_stars import heavy_stars
from repro.decomposition.types import Clustering
from repro.graphs.cluster_graph import build_cluster_graph


def merge_stars(clustering: Clustering, stars: dict) -> Clustering:
    """Merge each star of clusters into one cluster (satellites adopt the
    center's id)."""
    star_of: dict[Hashable, Hashable] = {}
    for center, satellites in stars.items():
        for satellite in satellites:
            star_of[satellite] = center
    new_assignment = {}
    for v, cluster in clustering.assignment.items():
        new_assignment[v] = star_of.get(cluster, cluster)
    return Clustering(new_assignment)


def chw_low_diameter_decomposition(
    graph: nx.Graph,
    epsilon: float,
    alpha: int | None = None,
    max_iterations: int | None = None,
    ledger: RoundLedger | None = None,
) -> tuple[Clustering, RoundLedger]:
    """CHW08: (ε, poly(1/ε)) LDD by iterated heavy-star merging.

    Deterministic.  ``alpha`` is the arboricity bound used to size the
    iteration count (default: the graph's degeneracy, a 2-approximation).
    The returned ledger charges, per iteration, the measured cluster-graph
    simulation cost: (D + 1) × (Cole–Vishkin rounds + O(1) marking steps).
    """
    if not 0 < epsilon <= 1:
        raise ValueError("epsilon must lie in (0, 1]")
    if ledger is None:
        ledger = RoundLedger()
    if graph.number_of_edges() == 0:
        return Clustering.singletons(graph), ledger
    if alpha is None:
        from repro.graphs.arboricity import degeneracy

        alpha = max(1, degeneracy(graph))
    if max_iterations is None:
        shrink = 1.0 - 1.0 / (8.0 * alpha)
        max_iterations = max(1, math.ceil(math.log(epsilon) / math.log(shrink)) + 2)

    clustering = Clustering.singletons(graph)
    m = graph.number_of_edges()
    diameter_bound = 0  # grows ×3 + 2 per merge round
    for iteration in range(1, max_iterations + 1):
        if clustering.cut_fraction(graph) <= epsilon:
            break
        cluster_graph = build_cluster_graph(graph, clustering.assignment)
        result = heavy_stars(cluster_graph)
        clustering = merge_stars(clustering, result.stars)
        simulation_factor = diameter_bound + 1
        ledger.charge(
            f"chw.iteration_{iteration}.heavy_stars",
            simulation_factor * (result.coloring_rounds + 4),
        )
        diameter_bound = 3 * diameter_bound + 2
    return clustering, ledger


def mpx_low_diameter_decomposition(
    graph: nx.Graph,
    epsilon: float,
    seed: int = 0,
) -> Clustering:
    """[MPX13]-style randomized LDD: exponential shifts β = ε/2.

    Every vertex draws δ_u ~ Exp(β); v joins the cluster of the u
    maximizing δ_u − dist(u, v) (computed by a multi-source Dijkstra over
    shifted distances).  Gives D = O(log n / β) w.h.p. and cuts each edge
    with probability ≤ O(β) — the randomized baseline the paper's
    deterministic algorithms are compared against.
    """
    if not 0 < epsilon <= 1:
        raise ValueError("epsilon must lie in (0, 1]")
    rng = random.Random(seed)
    beta = epsilon / 2.0
    shifts = {v: rng.expovariate(beta) for v in graph.nodes}
    # Multi-source BFS with fractional head starts: process in order of
    # (dist - shift).  Standard trick: push sources with key -shift.
    import heapq

    assignment: dict[Hashable, Hashable] = {}
    best_key: dict[Hashable, float] = {}
    heap: list[tuple[float, int, Hashable, Hashable]] = []
    counter = 0
    for v in graph.nodes:
        key = -shifts[v]
        heapq.heappush(heap, (key, counter, v, v))
        counter += 1
    while heap:
        key, _, v, center = heapq.heappop(heap)
        if v in assignment:
            continue
        assignment[v] = center
        best_key[v] = key
        for u in graph.neighbors(v):
            if u not in assignment:
                heapq.heappush(heap, (key + 1.0, counter, u, center))
                counter += 1
    return Clustering(assignment)
