"""Decomposition algorithms (Sections 3–5 of the paper).

* :mod:`types` — clustering / decomposition data structures.
* :mod:`kpr` — the KPR-style (ε, O(1/ε)) low-diameter decomposition of
  H-minor-free graphs (Lemma 3.1).
* :mod:`existential` — the recursive sparse-cut expander decomposition
  (Fact 3.1) and the three-step Observation 3.1 pipeline.
* :mod:`heavy_stars` — the CHW08 heavy-stars algorithm (Section 4.1).
* :mod:`ldd` — the CHW08 LOCAL low-diameter decomposition built on
  heavy-stars, plus the MPX-style randomized baseline.
* :mod:`overlap_expander` — expander decompositions with overlaps
  (Section 4.2, Lemmas 4.1–4.7).
* :mod:`edt` — (ε, D, T)-decompositions (Section 5, Theorem 1.1).
* :mod:`validation` — machine checks of every decomposition invariant.
"""

from repro.decomposition.types import (
    Clustering,
    EDTDecomposition,
    OverlapCluster,
    OverlapDecomposition,
    RoutingGroup,
)
from repro.decomposition.kpr import kpr_low_diameter_decomposition
from repro.decomposition.existential import (
    expander_decomposition_fact31,
    expander_decomposition_obs31,
)
from repro.decomposition.heavy_stars import HeavyStarsResult, heavy_stars
from repro.decomposition.ldd import chw_low_diameter_decomposition, mpx_low_diameter_decomposition
from repro.decomposition.overlap_expander import overlap_expander_decomposition
from repro.decomposition.edt import (
    edt_decomposition,
    local_edt_lemma51,
    local_edt_lemma52,
    refine_merge,
    refine_local,
    trivial_decomposition,
)
from repro.decomposition.validation import (
    check_clustering_partition,
    check_edt_decomposition,
    check_expander_decomposition,
    check_low_diameter_decomposition,
    check_overlap_decomposition,
    cluster_diameters,
)

__all__ = [
    "Clustering",
    "EDTDecomposition",
    "OverlapCluster",
    "OverlapDecomposition",
    "RoutingGroup",
    "kpr_low_diameter_decomposition",
    "expander_decomposition_fact31",
    "expander_decomposition_obs31",
    "HeavyStarsResult",
    "heavy_stars",
    "chw_low_diameter_decomposition",
    "mpx_low_diameter_decomposition",
    "overlap_expander_decomposition",
    "edt_decomposition",
    "local_edt_lemma51",
    "local_edt_lemma52",
    "refine_merge",
    "refine_local",
    "trivial_decomposition",
    "check_clustering_partition",
    "check_edt_decomposition",
    "check_expander_decomposition",
    "check_low_diameter_decomposition",
    "check_overlap_decomposition",
    "cluster_diameters",
]
