"""Machine checks for every decomposition invariant the paper states.

These are used by the test-suite and by the benchmarks' result tables; the
algorithms themselves never rely on them (they are oracles, not helpers).
"""

from __future__ import annotations

import math
from typing import Hashable

import networkx as nx

from repro.decomposition.types import (
    Clustering,
    EDTDecomposition,
    OverlapDecomposition,
)
from repro.graphs.conductance import conductance, exact_conductance


def check_clustering_partition(graph: nx.Graph, clustering: Clustering) -> None:
    """Every vertex assigned exactly once; ids consistent."""
    assigned = set(clustering.assignment)
    vertices = set(graph.nodes)
    if assigned != vertices:
        missing = vertices - assigned
        extra = assigned - vertices
        raise AssertionError(
            f"partition mismatch: missing={list(missing)[:5]} extra={list(extra)[:5]}"
        )


def cluster_diameters(graph: nx.Graph, clustering: Clustering) -> dict:
    """Diameter of each induced subgraph G[S] (∞ if disconnected)."""
    out: dict = {}
    for cluster, members in clustering.clusters().items():
        sub = graph.subgraph(members)
        if sub.number_of_nodes() <= 1:
            out[cluster] = 0
        elif not nx.is_connected(sub):
            out[cluster] = math.inf
        else:
            out[cluster] = nx.diameter(sub)
    return out


def check_low_diameter_decomposition(
    graph: nx.Graph,
    clustering: Clustering,
    epsilon: float,
    max_diameter: float,
) -> dict:
    """Assert the (ε, D) low-diameter decomposition conditions; return stats."""
    check_clustering_partition(graph, clustering)
    fraction = clustering.cut_fraction(graph)
    if fraction > epsilon + 1e-12:
        raise AssertionError(
            f"inter-cluster fraction {fraction:.4f} exceeds ε = {epsilon}"
        )
    diameters = cluster_diameters(graph, clustering)
    worst = max(diameters.values(), default=0)
    if worst > max_diameter:
        raise AssertionError(f"cluster diameter {worst} exceeds D = {max_diameter}")
    return {
        "cut_fraction": fraction,
        "max_diameter": worst,
        "clusters": len(diameters),
    }


def check_expander_decomposition(
    graph: nx.Graph,
    clustering: Clustering,
    epsilon: float,
    phi: float,
    exact_limit: int = 14,
) -> dict:
    """Assert the (ε, φ) expander decomposition conditions; return stats.

    Conductance of each non-singleton cluster is checked exactly up to
    ``exact_limit`` vertices, by the Cheeger lower bound above (the safe
    direction would be exact; the λ2/2 bound may *under*-estimate, so
    clusters failing the spectral bound get the exact/sweep treatment via
    :func:`repro.graphs.conductance.conductance` semantics — any failure
    here is a genuine quality report, recorded in the returned stats).
    """
    check_clustering_partition(graph, clustering)
    fraction = clustering.cut_fraction(graph)
    if fraction > epsilon + 1e-12:
        raise AssertionError(
            f"inter-cluster fraction {fraction:.4f} exceeds ε = {epsilon}"
        )
    worst_phi = math.inf
    failures = []
    for cluster, members in clustering.clusters().items():
        if len(members) == 1:
            continue
        sub = graph.subgraph(members)
        if sub.number_of_nodes() <= exact_limit:
            value = exact_conductance(sub)
        else:
            value = conductance(sub)
        worst_phi = min(worst_phi, value)
        if value < phi:
            failures.append((cluster, value))
    if failures:
        raise AssertionError(
            f"{len(failures)} clusters below φ = {phi}: "
            f"{[(c, round(v, 4)) for c, v in failures[:3]]}"
        )
    return {
        "cut_fraction": fraction,
        "min_conductance": worst_phi,
        "clusters": len(clustering.clusters()),
    }


def check_overlap_decomposition(
    graph: nx.Graph,
    decomposition: OverlapDecomposition,
    epsilon: float,
    phi: float,
    max_overlap: int,
    exact_limit: int = 14,
) -> dict:
    """Assert the (ε, φ, c) conditions of Section 4.2; return stats."""
    clustering = decomposition.clustering()
    check_clustering_partition(graph, clustering)
    fraction = clustering.cut_fraction(graph)
    if fraction > epsilon + 1e-12:
        raise AssertionError(
            f"inter-cluster fraction {fraction:.4f} exceeds ε = {epsilon}"
        )
    overlap = decomposition.max_overlap()
    if overlap > max_overlap:
        raise AssertionError(f"overlap {overlap} exceeds c = {max_overlap}")
    worst_phi = math.inf
    for cluster in decomposition.clusters:
        sub = cluster.subgraph()
        # G[S] must be a subgraph of G_S.
        induced = graph.subgraph(cluster.members)
        for u, v in induced.edges:
            if frozenset((u, v)) not in cluster.subgraph_edges:
                raise AssertionError(
                    f"G[S] edge ({u!r}, {v!r}) missing from associated G_S"
                )
        if sub.number_of_nodes() <= 1:
            continue
        if sub.number_of_edges() == 0:
            continue
        if sub.number_of_nodes() <= exact_limit:
            value = exact_conductance(sub)
        else:
            value = conductance(sub)
        worst_phi = min(worst_phi, value)
        if value < phi:
            raise AssertionError(
                f"cluster with {sub.number_of_nodes()} nodes has "
                f"Φ(G_S) = {value:.4f} < φ = {phi}"
            )
    return {
        "cut_fraction": fraction,
        "min_conductance": worst_phi,
        "max_overlap": overlap,
        "clusters": len(decomposition.clusters),
    }


def check_edt_decomposition(
    graph: nx.Graph,
    decomposition: EDTDecomposition,
    epsilon: float,
    max_diameter: float,
) -> dict:
    """Assert the (ε, D, T)-decomposition requirements of Section 1.1.

    The routing requirement is structural here: every cluster has a
    leader, and every non-singleton cluster is covered by a routing group
    whose subgraph contains the cluster.  Delivery itself is exercised by
    the gather backends' own tests and by ``run_gather_on_groups``.
    """
    stats = check_low_diameter_decomposition(
        graph, decomposition.clustering, epsilon, max_diameter
    )
    members = decomposition.cluster_members()
    for cluster_id, vertex_set in members.items():
        if cluster_id not in decomposition.leaders:
            raise AssertionError(f"cluster {cluster_id!r} has no leader")
        if len(vertex_set) > 1:
            groups = decomposition.groups.get(cluster_id)
            if not groups:
                raise AssertionError(
                    f"non-singleton cluster {cluster_id!r} has no routing group"
                )
            covered = set().union(*(set(g.nodes) for g in groups))
            if not vertex_set <= covered:
                raise AssertionError(
                    f"routing groups of {cluster_id!r} do not cover the cluster"
                )
            if decomposition.leaders[cluster_id] != groups[0].sink:
                raise AssertionError(
                    f"leader of {cluster_id!r} differs from its primary group sink"
                )
    stats["routing_rounds"] = decomposition.routing_rounds
    stats["construction_rounds"] = decomposition.construction_rounds
    return stats
