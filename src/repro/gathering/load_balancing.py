"""Information gathering via local load balancing (Section 2.1, Lemma 2.2).

The primitive is the Ghosh et al. [GLM+99] algorithm: in each step, every
vertex v sends one token to each neighbour u whose load at the beginning of
the step is at least 2Δ + 1 smaller than v's (the threshold guarantees v
still holds more than u afterwards).  Lemma 2.1: on a graph of sparsity ψ
and max degree Δ, O(M/ψ) steps reduce total imbalance from M to
O(Δ² ψ⁻¹ log |V|).

Lemma 2.2 turns this into information gathering on a φ-expander G: run the
balancing on the expander split G⋄ (constant degree, sparsity Θ(φ),
simulable within G at no cost).  Each undelivered message creates
Θ(φ⁻¹ log |E|) tokens; after balancing, every gadget vertex of the
max-degree target v⋆ holds ≈ the average load, so a Δ/(8|E|) fraction of
messages is delivered per iteration; *token splitting* keeps the imbalance
— and hence the step count — bounded as the number of undelivered messages
shrinks.  Repeating Θ((|E|/Δ) log(1/f)) times delivers a (1 − f) fraction.

The implementation below is a direct, measurable simulation of that loop:
token positions are tracked exactly; a message is *delivered* when one of
its tokens sits inside X_{v⋆} at the end of an iteration; and the CONGEST
round cost is the measured number of balancing steps (each step of G⋄ is
one round of G, because gadget-internal moves are free local computation
and each split edge maps to a distinct G-edge).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Hashable

import networkx as nx

from repro.graphs.expander_split import ExpanderSplit


def total_imbalance(loads: dict, average: float | None = None) -> float:
    """Max over vertices of |load(v) − average load| (the GLM potential)."""
    if not loads:
        return 0.0
    if average is None:
        average = sum(loads.values()) / len(loads)
    return max(abs(value - average) for value in loads.values())


def glm_load_balance(
    graph: nx.Graph,
    tokens: dict[Hashable, list],
    max_steps: int,
    target_imbalance: float = 0.0,
) -> int:
    """Run the [GLM+99] algorithm in place; returns the number of steps used.

    ``tokens`` maps each vertex to the list of tokens it holds (token
    identity is preserved — tokens carry message ids).  Stops early once
    the total imbalance is ≤ ``target_imbalance``.

    The step rule is exactly the paper's: v sends one token to each
    neighbour whose start-of-step load is ≥ 2Δ + 1 below v's load.
    """
    delta = max((d for _, d in graph.degree), default=0)
    gap = 2 * delta + 1
    average = sum(len(t) for t in tokens.values()) / max(1, len(tokens))
    for step in range(1, max_steps + 1):
        loads = {v: len(tokens[v]) for v in graph.nodes}
        if total_imbalance(loads, average) <= target_imbalance:
            return step - 1
        moved = False
        transfers: list[tuple[Hashable, Hashable]] = []
        for v in graph.nodes:
            lv = loads[v]
            for u in graph.neighbors(v):
                if lv - loads[u] >= gap:
                    transfers.append((v, u))
        for v, u in transfers:
            if tokens[v]:
                tokens[u].append(tokens[v].pop())
                moved = True
        if not moved:
            return step
    return max_steps


@dataclass
class GatherResult:
    """Outcome of one information-gathering run.

    Attributes
    ----------
    delivered:
        Set of delivered message ids.  A message id is ``(v, i)``: the
        i-th of deg(v) messages originated by vertex v.
    total_messages:
        2|E| in the paper's accounting (deg(v) messages per vertex).
    rounds:
        Measured CONGEST rounds (balancing steps + reverse notification).
    iterations:
        Outer repetitions of the create/balance/collect loop.
    detail:
        Free-form per-iteration diagnostics.
    report_metrics:
        Merged :class:`~repro.congest.metrics.NetworkMetrics` of the
        simulated arrival-notification floods (only populated when
        :func:`gather_with_load_balancing` runs with
        ``simulate_arrival_report=True``; the symmetric reverse-run
        round charge stays in :attr:`rounds` either way).
    """

    delivered: set = field(default_factory=set)
    total_messages: int = 0
    rounds: int = 0
    iterations: int = 0
    detail: list = field(default_factory=list)
    report_metrics: object = None

    @property
    def delivered_fraction(self) -> float:
        if self.total_messages == 0:
            return 1.0
        return len(self.delivered) / self.total_messages


def notify_arrivals(
    split_graph: nx.Graph,
    source: Hashable,
    arrived,
    index_of: dict,
    model: str = "local",
    plane: str | None = "auto",
):
    """Lemma 2.2's reverse notification, actually simulated.

    After an iteration's balancing, the sink gadget holds the arrived
    tokens; every *origin* must learn which of its messages landed
    before the next iteration re-creates tokens only for the
    undelivered ones.  Flood the arrived ids — each encoded as the
    dense index of its home split vertex, a variable-length integer
    list the fixed-width columnar schema cannot type — from a
    sink-gadget vertex through
    :func:`repro.congest.algorithms.flood_values` on the requested
    execution plane.  Returns ``(received ids per vertex, metrics)``;
    an origin reads off its own messages by membership.  ``model``
    defaults to ``"local"`` (the list exceeds one O(log n)-bit message;
    the paper charges the reverse balancing run instead, which
    :func:`gather_with_load_balancing` keeps as its round cost).
    """
    from repro.congest.algorithms import flood_values

    payload = tuple(sorted(index_of[message] for message in arrived))
    return flood_values(split_graph, source, payload, model=model,
                        plane=plane)


def gather_with_load_balancing(
    graph: nx.Graph,
    v_star: Hashable,
    f: float = 0.25,
    tokens_per_message: int | None = None,
    max_iterations: int | None = None,
    step_budget_per_iteration: int | None = None,
    simulate_arrival_report: bool = False,
    plane: str | None = "auto",
) -> GatherResult:
    """Lemma 2.2: deliver ≥ (1 − f) of everyone's deg(v) messages to v⋆.

    Parameters
    ----------
    graph:
        The (sub)graph to gather in; should be a φ-expander for the round
        bounds to hold (correctness of the simulation never depends on it).
    v_star:
        The sink; the paper picks a maximum-degree vertex.
    f:
        Allowed undelivered fraction, 0 < f < 1/2.
    tokens_per_message:
        Initial tokens created per undelivered message per iteration
        (paper: 4C φ⁻¹ log |E|).  Defaults to Θ(log |E|) with the measured
        split structure absorbing the φ⁻¹ factor via token splitting.
    max_iterations / step_budget_per_iteration:
        Safety caps; defaults follow the paper's Θ((|E|/Δ)·log(1/f)) and
        Θ(φ⁻² log |E|) shapes with concrete constants.
    simulate_arrival_report:
        Run each iteration's reverse notification through the simulator
        (:func:`notify_arrivals`, on the execution plane named by
        ``plane``): every origin must actually *learn* which of its
        messages landed, and a miss raises.  The measured flood metrics
        are merged into :attr:`GatherResult.report_metrics` and recorded
        per iteration in ``detail``; the round cost charged to
        :attr:`GatherResult.rounds` stays the paper's symmetric
        reverse-run estimate either way.

    Messages are ``(v, i)`` for i < deg(v).  The deg(v⋆) messages of v⋆
    itself are delivered for free (they are at the destination), matching
    the paper's accounting.
    """
    if not 0 < f < 0.5:
        raise ValueError("f must lie in (0, 1/2)")
    if v_star not in graph:
        raise ValueError("v_star not in graph")
    m = graph.number_of_edges()
    if m == 0:
        return GatherResult(total_messages=0)

    split = ExpanderSplit(graph)
    split_graph = split.split
    n_split = split_graph.number_of_nodes()
    log_m = max(1.0, math.log2(2 * m))

    if tokens_per_message is None:
        tokens_per_message = max(2, math.ceil(4 * log_m))
    if max_iterations is None:
        degree_star = max(graph.degree[v_star], 1)
        max_iterations = max(
            4, math.ceil(16 * (2 * m / degree_star) * math.log(2.0 / f))
        )
    if step_budget_per_iteration is None:
        step_budget_per_iteration = max(64, 8 * n_split * math.ceil(log_m))

    sink_gadget = set(split.gadget_vertices(v_star))
    result = GatherResult(total_messages=2 * m)
    split_index: dict = {}
    report_source = None
    if simulate_arrival_report:
        from repro.congest.metrics import NetworkMetrics

        split_index = {
            u: i for i, u in enumerate(sorted(split_graph.nodes, key=repr))
        }
        report_source = min(sink_gadget, key=repr)
        result.report_metrics = NetworkMetrics()
    # Messages owned by v⋆ are already home.
    for i in range(graph.degree[v_star]):
        result.delivered.add((v_star, i))

    undelivered: set = set()
    home: dict = {}
    for v in graph.nodes:
        if v == v_star:
            continue
        for i in range(graph.degree[v]):
            message = (v, i)
            undelivered.add(message)
            home[message] = (v, i)  # message (v, i) starts at split vertex (v, i)

    target_fraction = 1.0 - f
    average_cap = 2.0 * tokens_per_message  # the lemma's 2Cφ⁻¹ log|E| analogue

    while (
        result.delivered_fraction < target_fraction
        and undelivered
        and result.iterations < max_iterations
    ):
        result.iterations += 1
        tokens: dict[Hashable, list] = {v: [] for v in split_graph.nodes}
        for message in undelivered:
            tokens[home[message]].extend([message] * tokens_per_message)

        steps = glm_load_balance(
            split_graph,
            tokens,
            max_steps=step_budget_per_iteration,
            target_imbalance=tokens_per_message / 2,
        )
        result.rounds += steps

        # Token splitting: double tokens and re-balance until the average
        # load reaches the cap (Lemma 2.2's splitting loop).
        while sum(len(t) for t in tokens.values()) / n_split < average_cap and (
            2 * sum(len(t) for t in tokens.values()) / n_split <= 2 * average_cap
        ):
            for v in tokens:
                tokens[v] = tokens[v] + list(tokens[v])
            steps = glm_load_balance(
                split_graph,
                tokens,
                max_steps=step_budget_per_iteration,
                target_imbalance=tokens_per_message / 2,
            )
            result.rounds += steps
            if sum(len(t) for t in tokens.values()) / n_split >= average_cap:
                break

        arrived = {
            message
            for u in sink_gadget
            for message in tokens[u]
            if message in undelivered
        }
        # Reverse run (acknowledgements) costs the same number of rounds;
        # charge a symmetric copy, as in the lemma ("running in reverse").
        result.rounds += steps
        entry = {
            "iteration": result.iterations,
            "balancing_steps": steps,
            "arrived": len(arrived),
            "undelivered_before": len(undelivered),
        }
        if simulate_arrival_report:
            received, report_metrics = notify_arrivals(
                split_graph, report_source, arrived, split_index,
                plane=plane,
            )
            expected = frozenset(split_index[m] for m in arrived)
            # One equality check per *distinct* received object (the
            # flood shares one payload, so normally exactly one), not
            # per arrived message.
            decoded: dict[int, tuple] = {}
            for message in arrived:
                notified = received.get(home[message])
                if notified is None:
                    raise RuntimeError(
                        "arrival notification missed an origin"
                    )
                decoded[id(notified)] = notified
            for notified in decoded.values():
                if frozenset(notified) != expected:
                    raise RuntimeError(
                        "arrival notification missed an origin"
                    )
            result.report_metrics.merge(report_metrics)
            entry["report"] = {
                "rounds": report_metrics.rounds,
                "messages": report_metrics.messages,
                "bits": report_metrics.total_bits,
            }
        result.detail.append(entry)
        if not arrived:
            # Imbalance already near-flat yet nothing landed — only possible
            # with pathological parameters; fall back to direct accounting
            # by doubling token budget next round.
            tokens_per_message *= 2
            continue
        result.delivered |= arrived
        undelivered -= arrived

    return result
