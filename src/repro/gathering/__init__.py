"""Distributed information gathering in high-conductance graphs (Section 2).

Two routing backends, exactly as in the paper:

* :mod:`load_balancing` — the Ghosh et al. [GLM+99] local load-balancing
  algorithm run on the expander split, with the token-splitting refinement
  of Lemma 2.2.
* :mod:`random_walks` — lazy random walks with limited independence
  (Lemmas 2.3–2.6), derandomized by searching the explicit k-wise
  independent hash family of :mod:`kwise` for a seed whose existence the
  paper proves.

Both solve the same task: every vertex v of a φ-expander sends deg(v)
messages to the maximum-degree vertex v⋆, delivering at least a (1 − f)
fraction.
"""

from repro.gathering.kwise import KWiseHash
from repro.gathering.load_balancing import (
    GatherResult,
    gather_with_load_balancing,
    glm_load_balance,
    notify_arrivals,
    total_imbalance,
)
from repro.gathering.random_walks import (
    ColumnarWalkTokenRouter,
    WalkSchedule,
    WalkTokenRouter,
    broadcast_schedule,
    build_regularized_split,
    execute_walk_schedule,
    find_walk_schedule,
    find_shared_walk_schedule,
    gather_with_random_walks,
    schedule_hash,
    simulate_walks,
)

__all__ = [
    "KWiseHash",
    "GatherResult",
    "gather_with_load_balancing",
    "glm_load_balance",
    "notify_arrivals",
    "total_imbalance",
    "ColumnarWalkTokenRouter",
    "WalkSchedule",
    "WalkTokenRouter",
    "broadcast_schedule",
    "build_regularized_split",
    "execute_walk_schedule",
    "find_walk_schedule",
    "find_shared_walk_schedule",
    "gather_with_random_walks",
    "schedule_hash",
    "simulate_walks",
]
