"""Routing schedules from derandomized lazy random walks (Section 2.2).

Pipeline, following Lemmas 2.3–2.6:

1. Build the *regularized* expander split  fG⋄: the expander split G⋄ with
   self-loops added so every vertex has the same even degree d = O(1).
2. Associate each message (the i-th of deg(v) messages of vertex v) with
   the split vertex (v, i); start r lazy random walks per message, where
   r = Θ((|E|/Δ)·log(1/f) + log τ).
3. Drive every walk for τ = τ_mix(fG⋄) steps using decisions drawn from a
   k-wise independent hash h(step, walk, origin) ∈ {1, …, 2d}: values
   1..d move along the corresponding incident edge (self-loops stay);
   values d+1..2d stay put — exactly the paper's implementation of the
   lazy walk with (1 + log d) fair coins per step.
4. *Goodness* (paper definition): a message is good if ≥ 1 of its walks
   ends inside X_{v⋆} and no visited (vertex, time) pair ever holds more
   than 3r walks; overloaded (vertex, time) pairs discard all their walks.
5. Derandomize: Lemmas 2.3/2.4 show a random member of the hash family
   makes every message good with probability ≥ 1 − f, so members for which
   ≥ (1 − f) of messages are good exist in abundance; enumerate seeds
   deterministically and keep the first witness.  The schedule is the seed
   — O(k log n) bits — which a leader can broadcast (Lemma 2.5), or share
   across many disjoint subgraphs (Lemma 2.6).

The CONGEST cost of *executing* a schedule is 3r·τ rounds (3r rounds per
walk step); the simulation returns measured congestion so tests can check
the 3r bound actually bites where the paper says it does.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Hashable, Sequence

import networkx as nx

from repro.gathering.kwise import KWiseHash, VECTOR_PRIME
from repro.graphs.expander_split import ExpanderSplit


@dataclass(frozen=True)
class RegularizedSplit:
    """fG⋄: expander split vertices with per-vertex edge slots of width d.

    ``slots[u]`` is a length-d tuple: entry j is the neighbour reached by
    decision j (entries equal to ``u`` are self-loops).  All vertices have
    exactly d slots; d is even.
    """

    split: ExpanderSplit
    degree: int
    slots: dict
    index: dict

    @property
    def vertices(self) -> list:
        return list(self.slots)


def build_regularized_split(graph: nx.Graph) -> RegularizedSplit:
    """Build fG⋄ = expander split + self-loops up to a uniform even degree."""
    split = ExpanderSplit(graph)
    sg = split.split
    max_degree = max((d for _, d in sg.degree), default=0)
    d = max_degree if max_degree % 2 == 0 else max_degree + 1
    d = max(d, 2)
    slots = {}
    for u in sg.nodes:
        neighbors = sorted(sg.neighbors(u), key=repr)
        loops = d - len(neighbors)
        slots[u] = tuple(neighbors + [u] * loops)
    index = {u: i for i, u in enumerate(sorted(sg.nodes, key=repr))}
    return RegularizedSplit(split=split, degree=d, slots=slots, index=index)


@dataclass(frozen=True)
class WalkSchedule:
    """A derandomized routing schedule (the broadcastable bit string).

    ``seed`` identifies the hash family member; ``walks_per_message`` = r;
    ``steps`` = τ; ``degree`` = d of fG⋄.  ``schedule_bits`` is the
    paper's O(k log n) description length.
    """

    seed: int
    walks_per_message: int
    steps: int
    degree: int
    k: int
    good_fraction: float

    @property
    def schedule_bits(self) -> int:
        prime_bits = VECTOR_PRIME.bit_length()
        return self.k * prime_bits

    def execution_rounds(self) -> int:
        """CONGEST rounds to run the schedule: 3r per step (paper)."""
        return 3 * self.walks_per_message * self.steps


def _walk_parameters(
    graph: nx.Graph,
    v_star: Hashable,
    f: float,
    mixing_steps: int,
    constant_c: float,
) -> tuple[int, int]:
    """r and k per Section 2.2 (with tunable hidden constant)."""
    m = graph.number_of_edges()
    degree_star = max(graph.degree[v_star], 1)
    ratio = (2 * m) / degree_star  # |V⋄| / |X_{v⋆}|
    r = max(
        2,
        math.ceil(constant_c * (ratio * math.log(2.0 / f) + math.log(max(2, mixing_steps)))),
    )
    d = 2  # refined by caller; k only needs the right order
    k = max(4, (1 + math.ceil(math.log2(2 * d))) * 2 * r * mixing_steps)
    return r, k


def simulate_walks(
    regular: RegularizedSplit,
    origins: Sequence[tuple],
    hash_function: KWiseHash,
    walks_per_message: int,
    steps: int,
    congestion_cap: int | None = None,
) -> dict:
    """Simulate all walks (vectorized); returns positions and congestion.

    ``origins`` lists (message_id, start_split_vertex).  Walks β = 0..r−1
    of message index i start at that message's split vertex; decisions come
    from ``hash_function.hash_triple(step, global_walk_index,
    origin_index)``; decision values < d move along the corresponding edge
    slot (self-loop slots stay), values ≥ d stay put — the lazy walk.

    Returns a dict with:

    ``final``      — {message_id: list of final split vertex indices of its
                      surviving walks (as split vertices)};
    ``discarded``  — number of walks dropped by the 3r congestion rule;
    ``max_load``   — max surviving walks co-located at any (vertex, step).
    """
    import numpy as np

    d = regular.degree
    cap = congestion_cap if congestion_cap is not None else 3 * walks_per_message
    vertex_list = sorted(regular.slots, key=repr)
    vertex_index = {u: i for i, u in enumerate(vertex_list)}
    n = len(vertex_list)
    slot_table = np.empty((n, d), dtype=np.int64)
    for u, slots in regular.slots.items():
        slot_table[vertex_index[u]] = [vertex_index[s] for s in slots]

    r = walks_per_message
    message_ids = [message_id for message_id, _ in origins]
    n_walks = len(origins) * r
    positions = np.empty(n_walks, dtype=np.int64)
    origin_idx = np.empty(n_walks, dtype=np.uint64)
    for i, (_, start) in enumerate(origins):
        positions[i * r : (i + 1) * r] = vertex_index[start]
        origin_idx[i * r : (i + 1) * r] = regular.index[start]
    walk_idx = np.arange(n_walks, dtype=np.uint64)
    alive = np.ones(n_walks, dtype=bool)
    discarded = 0
    max_load = 0
    for step in range(1, steps + 1):
        decisions = hash_function.hash_triples_vectorized(step, walk_idx, origin_idx)
        move = (decisions < d) & alive
        positions[move] = slot_table[positions[move], decisions[move].astype(np.int64)]
        counts = np.bincount(positions[alive], minlength=n)
        step_max = int(counts.max()) if counts.size else 0
        max_load = max(max_load, step_max)
        if step_max > cap:
            overloaded = counts > cap
            victims = alive & overloaded[positions]
            discarded += int(victims.sum())
            alive &= ~victims
    final: dict = {}
    for i, message_id in enumerate(message_ids):
        survivors = [
            vertex_list[int(positions[j])]
            for j in range(i * r, (i + 1) * r)
            if alive[j]
        ]
        if survivors:
            final[message_id] = survivors
    return {"final": final, "discarded": discarded, "max_load": max_load}


def _good_fraction(
    graph: nx.Graph,
    regular: RegularizedSplit,
    v_star: Hashable,
    outcome: dict,
    total_messages: int,
) -> tuple[float, set]:
    sink = set(regular.split.gadget_vertices(v_star))
    delivered = {
        message_id
        for message_id, finals in outcome["final"].items()
        if any(p in sink for p in finals)
    }
    return len(delivered) / max(1, total_messages), delivered


def find_walk_schedule(
    graph: nx.Graph,
    v_star: Hashable,
    f: float = 0.25,
    phi_hint: float | None = None,
    constant_c: float = 1.0,
    mixing_constant: float = 2.0,
    independence: int | None = None,
    max_seeds: int = 64,
) -> tuple[WalkSchedule, set]:
    """Lemma 2.5: deterministically find a routing schedule for ``graph``.

    The vertex that knows the topology (a cluster leader) runs this
    locally: enumerate hash seeds 0, 1, 2, … and return the first whose
    simulated walks deliver ≥ (1 − f) of the messages.  Existence of a
    witness follows from Lemmas 2.3/2.4; ``max_seeds`` guards against
    misparameterization (raise rather than loop forever).

    ``independence`` overrides the k used for the hash family; the
    paper-accurate k = (1 + log d)·2r·τ is the default shape but any
    k ≥ 4 reproduces the routing behaviour (only the proof needs full k);
    see DESIGN.md.  Returns (schedule, delivered message ids).
    """
    if not 0 < f < 0.5:
        raise ValueError("f must lie in (0, 1/2)")
    m = graph.number_of_edges()
    if m == 0:
        schedule = WalkSchedule(0, 0, 0, 2, 4, 1.0)
        return schedule, set()
    regular = build_regularized_split(graph)
    n_split = len(regular.vertices)
    if phi_hint is None:
        phi_hint = 0.2  # caller normally passes the decomposition's φ
    tau = max(
        2,
        math.ceil(mixing_constant * (phi_hint ** -2) * math.log(max(2, n_split))),
    )
    r, k_paper = _walk_parameters(graph, v_star, f, tau, constant_c)
    k = independence if independence is not None else min(k_paper, 16)

    origins = []
    total_messages = 0
    for v in graph.nodes:
        if v == v_star:
            continue
        for i in range(graph.degree[v]):
            origins.append(((v, i), (v, i)))
            total_messages += 1

    target = 1.0 - f
    best: tuple[float, int, set] | None = None
    for seed in range(max_seeds):
        h = KWiseHash(
            k=k, range_size=2 * regular.degree, seed=seed, prime=VECTOR_PRIME
        )
        outcome = simulate_walks(regular, origins, h, r, tau)
        fraction, delivered = _good_fraction(
            graph, regular, v_star, outcome, total_messages
        )
        if best is None or fraction > best[0]:
            best = (fraction, seed, delivered)
        if fraction >= target:
            schedule = WalkSchedule(
                seed=seed,
                walks_per_message=r,
                steps=tau,
                degree=regular.degree,
                k=k,
                good_fraction=fraction,
            )
            # v⋆'s own deg(v⋆) messages are home already.
            for i in range(graph.degree[v_star]):
                delivered.add((v_star, i))
            return schedule, delivered
    raise RuntimeError(
        f"no seed among {max_seeds} reached delivery {target:.3f}; best was "
        f"{best[0]:.3f} (seed {best[1]}) — increase r via constant_c"
    )


def find_shared_walk_schedule(
    subgraphs: Sequence[nx.Graph],
    sinks: Sequence[Hashable],
    f: float = 0.25,
    phi_hint: float | None = None,
    constant_c: float = 1.0,
    mixing_constant: float = 2.0,
    independence: int | None = None,
    max_seeds: int = 64,
) -> tuple[WalkSchedule, list[set]]:
    """Lemma 2.6: one schedule shared by many disjoint subgraphs.

    Uses a single hash seed for all subgraphs; r and τ are maxima over the
    subgraphs (the paper's η and ζ).  The delivery guarantee is aggregate:
    ≥ (1 − f) of the union of all messages.  Returns the schedule and the
    per-subgraph delivered sets.
    """
    if len(subgraphs) != len(sinks):
        raise ValueError("need one sink per subgraph")
    live = [
        (g, sink) for g, sink in zip(subgraphs, sinks) if g.number_of_edges() > 0
    ]
    if not live:
        return WalkSchedule(0, 0, 0, 2, 4, 1.0), [set() for _ in subgraphs]
    regulars = [build_regularized_split(g) for g, _ in live]
    if phi_hint is None:
        phi_hint = 0.2
    zeta = max(len(r.vertices) for r in regulars)
    tau = max(
        2, math.ceil(mixing_constant * (phi_hint ** -2) * math.log(max(2, zeta)))
    )
    r_value = 2
    for (g, sink) in live:
        r_i, _ = _walk_parameters(g, sink, f, tau, constant_c)
        r_value = max(r_value, r_i)
    degree = max(r.degree for r in regulars)
    k = independence if independence is not None else 16

    payloads = []
    total_messages = 0
    for (g, sink), regular in zip(live, regulars):
        origins = []
        for v in g.nodes:
            if v == sink:
                continue
            for i in range(g.degree[v]):
                origins.append(((v, i), (v, i)))
                total_messages += 1
        payloads.append((g, sink, regular, origins))

    target = 1.0 - f
    best_fraction = -1.0
    for seed in range(max_seeds):
        h = KWiseHash(k=k, range_size=2 * degree, seed=seed, prime=VECTOR_PRIME)
        all_delivered: list[set] = []
        delivered_count = 0
        for g, sink, regular, origins in payloads:
            # Each subgraph uses its own slot tables but the shared hash;
            # decisions ≥ 2·d_i fall back to "stay" (a lazy step), which
            # preserves the walk distribution shape.
            outcome = simulate_walks(regular, origins, h, r_value, tau)
            _, delivered = _good_fraction(g, regular, sink, outcome, 1)
            all_delivered.append(delivered)
            delivered_count += len(delivered)
        fraction = delivered_count / max(1, total_messages)
        best_fraction = max(best_fraction, fraction)
        if fraction >= target:
            schedule = WalkSchedule(
                seed=seed,
                walks_per_message=r_value,
                steps=tau,
                degree=degree,
                k=k,
                good_fraction=fraction,
            )
            # Re-inflate to the original subgraph list (empty graphs → ∅),
            # and credit each sink its own messages.
            out: list[set] = []
            live_iter = iter(zip(live, all_delivered))
            for g, sink in zip(subgraphs, sinks):
                if g.number_of_edges() == 0:
                    out.append(set())
                    continue
                (_, _), delivered = next(live_iter)
                for i in range(g.degree[sink]):
                    delivered.add((sink, i))
                out.append(delivered)
            return schedule, out
    raise RuntimeError(
        f"no shared seed among {max_seeds} reached delivery {target:.3f}; "
        f"best was {best_fraction:.3f}"
    )


def broadcast_schedule(
    graph: nx.Graph,
    v_star: Hashable,
    schedule: WalkSchedule,
    model: str = "congest",
):
    """Lemma 2.5's distribution step, actually simulated.

    The leader v⋆ knows the schedule; every vertex must learn it before
    the walks can run.  Flood the schedule's description — ``(seed, r, τ,
    d, k)``, an O(log n)-bit payload — from v⋆ through the simulator's
    flooding primitive, which emits one shared :class:`Message` per round
    via the engine's broadcast plane (``ctx.broadcast``).  Returns
    ``(outputs, metrics)``: every vertex's received description plus the
    measured CONGEST round/message/bit counts of the flood.
    """
    from repro.congest.algorithms import broadcast as _flood

    payload = (
        schedule.seed,
        schedule.walks_per_message,
        schedule.steps,
        schedule.degree,
        schedule.k,
    )
    return _flood(graph, v_star, payload, model=model)


def gather_with_random_walks(
    graph: nx.Graph,
    v_star: Hashable,
    f: float = 0.25,
    simulate_schedule_broadcast: bool = False,
    **kwargs,
) -> tuple[set, int, WalkSchedule]:
    """Convenience wrapper: find a schedule and report (delivered, rounds).

    Rounds = schedule broadcast cost (schedule_bits / bandwidth, charged
    as ⌈bits / log n⌉·D̂ with D̂ folded into execution rounds by the
    caller) + 3rτ execution; we return the execution rounds, the paper's
    dominant term.  With ``simulate_schedule_broadcast=True`` the
    Lemma 2.5 distribution step is run through the simulator
    (:func:`broadcast_schedule`) and its *measured* rounds are added to
    the returned total.
    """
    schedule, delivered = find_walk_schedule(graph, v_star, f=f, **kwargs)
    rounds = schedule.execution_rounds()
    if simulate_schedule_broadcast:
        outputs, metrics = broadcast_schedule(graph, v_star, schedule)
        if any(received is None for received in outputs.values()):
            raise RuntimeError("schedule broadcast did not reach all vertices")
        rounds += metrics.rounds
    return delivered, rounds, schedule
