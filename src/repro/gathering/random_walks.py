"""Routing schedules from derandomized lazy random walks (Section 2.2).

Pipeline, following Lemmas 2.3–2.6:

1. Build the *regularized* expander split  fG⋄: the expander split G⋄ with
   self-loops added so every vertex has the same even degree d = O(1).
2. Associate each message (the i-th of deg(v) messages of vertex v) with
   the split vertex (v, i); start r lazy random walks per message, where
   r = Θ((|E|/Δ)·log(1/f) + log τ).
3. Drive every walk for τ = τ_mix(fG⋄) steps using decisions drawn from a
   k-wise independent hash h(step, walk, origin) ∈ {1, …, 2d}: values
   1..d move along the corresponding incident edge (self-loops stay);
   values d+1..2d stay put — exactly the paper's implementation of the
   lazy walk with (1 + log d) fair coins per step.
4. *Goodness* (paper definition): a message is good if ≥ 1 of its walks
   ends inside X_{v⋆} and no visited (vertex, time) pair ever holds more
   than 3r walks; overloaded (vertex, time) pairs discard all their walks.
5. Derandomize: Lemmas 2.3/2.4 show a random member of the hash family
   makes every message good with probability ≥ 1 − f, so members for which
   ≥ (1 − f) of messages are good exist in abundance; enumerate seeds
   deterministically and keep the first witness.  The schedule is the seed
   — O(k log n) bits — which a leader can broadcast (Lemma 2.5), or share
   across many disjoint subgraphs (Lemma 2.6).

The CONGEST cost of *executing* a schedule is 3r·τ rounds (3r rounds per
walk step); the simulation returns measured congestion so tests can check
the 3r bound actually bites where the paper says it does.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Hashable, Mapping, Sequence

import networkx as nx
import numpy as np

from repro.congest.columnar import ColumnarAlgorithm, ColumnarContext
from repro.congest.message import ColumnarSpec, Message, VarColumn
from repro.congest.network import Network, NodeAlgorithm, NodeContext
from repro.congest.runtime import variant_for_plane
from repro.gathering.kwise import KWiseHash, VECTOR_PRIME
from repro.graphs.expander_split import ExpanderSplit


@dataclass(frozen=True)
class RegularizedSplit:
    """fG⋄: expander split vertices with per-vertex edge slots of width d.

    ``slots[u]`` is a length-d tuple: entry j is the neighbour reached by
    decision j (entries equal to ``u`` are self-loops).  All vertices have
    exactly d slots; d is even.
    """

    split: ExpanderSplit
    degree: int
    slots: dict
    index: dict

    @property
    def vertices(self) -> list:
        return list(self.slots)


def build_regularized_split(graph: nx.Graph) -> RegularizedSplit:
    """Build fG⋄ = expander split + self-loops up to a uniform even degree."""
    split = ExpanderSplit(graph)
    sg = split.split
    max_degree = max((d for _, d in sg.degree), default=0)
    d = max_degree if max_degree % 2 == 0 else max_degree + 1
    d = max(d, 2)
    slots = {}
    for u in sg.nodes:
        neighbors = sorted(sg.neighbors(u), key=repr)
        loops = d - len(neighbors)
        slots[u] = tuple(neighbors + [u] * loops)
    index = {u: i for i, u in enumerate(sorted(sg.nodes, key=repr))}
    return RegularizedSplit(split=split, degree=d, slots=slots, index=index)


@dataclass(frozen=True)
class WalkSchedule:
    """A derandomized routing schedule (the broadcastable bit string).

    ``seed`` identifies the hash family member; ``walks_per_message`` = r;
    ``steps`` = τ; ``degree`` = d of fG⋄.  ``schedule_bits`` is the
    paper's O(k log n) description length.
    """

    seed: int
    walks_per_message: int
    steps: int
    degree: int
    k: int
    good_fraction: float

    @property
    def schedule_bits(self) -> int:
        prime_bits = VECTOR_PRIME.bit_length()
        return self.k * prime_bits

    def execution_rounds(self) -> int:
        """CONGEST rounds to run the schedule: 3r per step (paper)."""
        return 3 * self.walks_per_message * self.steps


def _walk_parameters(
    graph: nx.Graph,
    v_star: Hashable,
    f: float,
    mixing_steps: int,
    constant_c: float,
) -> tuple[int, int]:
    """r and k per Section 2.2 (with tunable hidden constant)."""
    m = graph.number_of_edges()
    degree_star = max(graph.degree[v_star], 1)
    ratio = (2 * m) / degree_star  # |V⋄| / |X_{v⋆}|
    r = max(
        2,
        math.ceil(constant_c * (ratio * math.log(2.0 / f) + math.log(max(2, mixing_steps)))),
    )
    d = 2  # refined by caller; k only needs the right order
    k = max(4, (1 + math.ceil(math.log2(2 * d))) * 2 * r * mixing_steps)
    return r, k


def simulate_walks(
    regular: RegularizedSplit,
    origins: Sequence[tuple],
    hash_function: KWiseHash,
    walks_per_message: int,
    steps: int,
    congestion_cap: int | None = None,
) -> dict:
    """Simulate all walks (vectorized); returns positions and congestion.

    ``origins`` lists (message_id, start_split_vertex).  Walks β = 0..r−1
    of message index i start at that message's split vertex; decisions come
    from ``hash_function.hash_triple(step, global_walk_index,
    origin_index)``; decision values < d move along the corresponding edge
    slot (self-loop slots stay), values ≥ d stay put — the lazy walk.

    Returns a dict with:

    ``final``      — {message_id: list of final split vertex indices of its
                      surviving walks (as split vertices)};
    ``discarded``  — number of walks dropped by the 3r congestion rule;
    ``max_load``   — max surviving walks co-located at any (vertex, step).
    """
    import numpy as np

    d = regular.degree
    cap = congestion_cap if congestion_cap is not None else 3 * walks_per_message
    vertex_list = sorted(regular.slots, key=repr)
    vertex_index = {u: i for i, u in enumerate(vertex_list)}
    n = len(vertex_list)
    slot_table = np.empty((n, d), dtype=np.int64)
    for u, slots in regular.slots.items():
        slot_table[vertex_index[u]] = [vertex_index[s] for s in slots]

    r = walks_per_message
    message_ids = [message_id for message_id, _ in origins]
    n_walks = len(origins) * r
    positions = np.empty(n_walks, dtype=np.int64)
    origin_idx = np.empty(n_walks, dtype=np.uint64)
    for i, (_, start) in enumerate(origins):
        positions[i * r : (i + 1) * r] = vertex_index[start]
        origin_idx[i * r : (i + 1) * r] = regular.index[start]
    walk_idx = np.arange(n_walks, dtype=np.uint64)
    alive = np.ones(n_walks, dtype=bool)
    discarded = 0
    max_load = 0
    for step in range(1, steps + 1):
        decisions = hash_function.hash_triples_vectorized(step, walk_idx, origin_idx)
        move = (decisions < d) & alive
        positions[move] = slot_table[positions[move], decisions[move].astype(np.int64)]
        counts = np.bincount(positions[alive], minlength=n)
        step_max = int(counts.max()) if counts.size else 0
        max_load = max(max_load, step_max)
        if step_max > cap:
            overloaded = counts > cap
            victims = alive & overloaded[positions]
            discarded += int(victims.sum())
            alive &= ~victims
    final: dict = {}
    for i, message_id in enumerate(message_ids):
        survivors = [
            vertex_list[int(positions[j])]
            for j in range(i * r, (i + 1) * r)
            if alive[j]
        ]
        if survivors:
            final[message_id] = survivors
    return {"final": final, "discarded": discarded, "max_load": max_load}


# ---------------------------------------------------------------------------
# Walk-token forwarding: the schedule execution as real message passing
# ---------------------------------------------------------------------------
class WalkTokenRouter(NodeAlgorithm):
    """Lemma 2.5's schedule *execution* as a message-passing program.

    Runs over the regularized split fG⋄ (one simulator vertex per split
    vertex).  Each vertex holds **walk tokens** — ``(walk id, origin
    index)`` pairs — and every round is one lazy-walk step: decisions
    come from the k-wise hash every vertex learned through the schedule
    broadcast, tokens whose decision indexes a real edge slot are
    forwarded as one variable-length message per (sender, neighbour)
    pair (the flattened pair list), and the 3r congestion rule is
    applied *locally*: a vertex whose load after the step exceeds the
    cap discards everything it holds, exactly as
    :func:`simulate_walks`'s global bincount rule does per vertex.

    Round protocol: round 1 sends the step-1 moves; round ``t`` (for
    ``2 ≤ t ≤ τ``) folds the step-``t−1`` arrivals, applies the
    congestion rule, and sends step ``t``; round ``τ+1`` folds the last
    arrivals, applies the final rule, and halts — ``τ+1`` rounds total.
    (The paper charges 3r CONGEST rounds per step to serialize token
    lists through O(log n)-bit messages; the simulator instead measures
    the full lists' bits, so the analytic round cost stays
    :meth:`WalkSchedule.execution_rounds` and the router is normally run
    with ``model="local"``.)

    Outputs per vertex: ``(sorted surviving token pairs, discarded
    count, peak load)`` — :func:`execute_walk_schedule` folds them back
    into the :func:`simulate_walks` outcome shape and the two agree
    token for token.
    """

    def __init__(self, degree: int, steps: int, cap: int,
                 hash_function: KWiseHash) -> None:
        super().__init__()
        self.degree = degree
        self.steps = steps
        self.cap = cap
        self.hash = hash_function
        self.tokens: list[tuple[int, int]] = []
        self.discarded = 0
        self.max_load = 0

    def spawn(self) -> "WalkTokenRouter":
        return WalkTokenRouter(self.degree, self.steps, self.cap, self.hash)

    def initialize(self, ctx: NodeContext) -> None:
        flat = self.input or ()
        self.tokens = [
            (int(flat[i]), int(flat[i + 1])) for i in range(0, len(flat), 2)
        ]

    def on_round(self, ctx: NodeContext, inbox: Mapping) -> dict:
        for message in inbox.values():
            flat = message.payload
            for j in range(0, len(flat), 2):
                self.tokens.append((flat[j], flat[j + 1]))
        if ctx.round_number > 1:
            # Positions after step round_number - 1 are now complete:
            # record the load and apply the congestion rule.
            load = len(self.tokens)
            if load > self.max_load:
                self.max_load = load
            if load > self.cap:
                self.discarded += load
                self.tokens = []
        step = ctx.round_number
        if step > self.steps:
            self.halt()
            return {}
        if not self.tokens:
            return {}
        hash_triple = self.hash.hash_triple
        neighbors = ctx.neighbors
        real_slots = len(neighbors)  # slots beyond these are self-loops
        outgoing: dict = {}
        kept: list[tuple[int, int]] = []
        for walk, origin in self.tokens:
            decision = hash_triple(step, walk, origin)
            if decision < real_slots:
                flat = outgoing.get(neighbors[decision])
                if flat is None:
                    flat = outgoing[neighbors[decision]] = []
                flat.append(walk)
                flat.append(origin)
            else:
                kept.append((walk, origin))
        self.tokens = kept
        return {
            target: Message(tuple(flat)) for target, flat in outgoing.items()
        }

    def output(self):
        return (tuple(sorted(self.tokens)), self.discarded, self.max_load)


class ColumnarWalkTokenRouter(ColumnarAlgorithm):
    """Round-vectorized port of :class:`WalkTokenRouter` onto the
    columnar plane's variable-width columns.

    The whole graph's tokens live in three parallel arrays (walk id,
    origin index, current vertex); each round hashes every token at once
    (:meth:`~repro.gathering.kwise.KWiseHash.hash_triples_vectorized`),
    groups the movers by (sender, destination) with one stable sort, and
    emits each group's flattened pair list as one
    :class:`~repro.congest.message.VarColumn` segment — byte-identical
    messages, metrics, and outputs to the object-plane original, with
    zero per-token Python on the fast path.  Arrival folding is the
    zero-copy :meth:`~repro.congest.columnar.ColumnarContext.gather_var`.
    """

    spec = ColumnarSpec(VarColumn("tokens"))
    # Token state is dense-row keyed (no vertex-id resolution after
    # setup: per-row inputs only) and every emission is gated on
    # ``~ctx.halted`` — safe for trial-major grid batching.
    grid_safe = True

    def __init__(self, degree: int, steps: int, cap: int,
                 hash_function: KWiseHash) -> None:
        self.degree = degree
        self.steps = steps
        self.cap = cap
        self.hash = hash_function

    def spawn(self) -> "ColumnarWalkTokenRouter":
        return ColumnarWalkTokenRouter(
            self.degree, self.steps, self.cap, self.hash
        )

    def setup(self, ctx: ColumnarContext) -> None:
        n = ctx.n
        walks, origins, at = [], [], []
        for i, flat in enumerate(ctx.inputs):
            if not flat:
                continue
            pairs = np.asarray(flat, dtype=np.int64).reshape(-1, 2)
            walks.append(pairs[:, 0])
            origins.append(pairs[:, 1])
            at.append(np.full(len(pairs), i, dtype=np.int64))
        empty = np.empty(0, dtype=np.int64)
        self.walk = np.concatenate(walks) if walks else empty
        self.orig = np.concatenate(origins) if origins else empty
        self.at = np.concatenate(at) if at else empty
        self.discarded = np.zeros(n, dtype=np.int64)
        self.max_load = np.zeros(n, dtype=np.int64)

    def on_round(self, ctx: ColumnarContext) -> None:
        stepped = ~ctx.halted
        inbox = ctx.inbox
        if len(inbox):
            # Fold arrivals: each message's var segment is a flattened
            # pair list, so the zero-copy per-vertex concatenation
            # decodes with two strided views.
            pool, vertex_indptr = ctx.gather_var("tokens")
            counts = (vertex_indptr[1:] - vertex_indptr[:-1]) // 2
            self.walk = np.concatenate([self.walk, pool[0::2]])
            self.orig = np.concatenate([self.orig, pool[1::2]])
            self.at = np.concatenate([
                self.at,
                np.repeat(np.arange(ctx.n, dtype=np.int64), counts),
            ])
        if ctx.round_number > 1:
            loads = np.bincount(self.at, minlength=ctx.n)
            np.maximum(self.max_load, loads, out=self.max_load)
            over = loads > self.cap
            if over.any():
                self.discarded += np.where(over, loads, 0)
                keep = ~over[self.at]
                self.walk = self.walk[keep]
                self.orig = self.orig[keep]
                self.at = self.at[keep]
        step = ctx.round_number
        if step > self.steps:
            ctx.halt(stepped)
            return
        if not len(self.walk):
            return
        decisions = self.hash.hash_triples_vectorized(
            step, self.walk.astype(np.uint64), self.orig.astype(np.uint64)
        ).astype(np.int64)
        # Decisions below the sender's real degree move along that CSR
        # slot; self-loop slots and lazy decisions stay put.
        moving = (decisions < ctx.degrees[self.at]) & stepped[self.at]
        if moving.any():
            m_at = self.at[moving]
            dest = ctx.indices[ctx.indptr[m_at] + decisions[moving]]
            # One stable sort groups the movers into the object plane's
            # per-(sender, destination) messages.
            order = np.argsort(m_at * ctx.n + dest, kind="stable")
            m_at = m_at[order]
            dest = dest[order]
            boundary = np.empty(len(m_at), dtype=bool)
            boundary[0] = True
            np.not_equal(
                m_at[1:] * ctx.n + dest[1:],
                m_at[:-1] * ctx.n + dest[:-1],
                out=boundary[1:],
            )
            group_starts = np.flatnonzero(boundary)
            group_sizes = np.diff(np.append(group_starts, len(m_at)))
            pool = np.empty(2 * len(m_at), dtype=np.int64)
            pool[0::2] = self.walk[moving][order]
            pool[1::2] = self.orig[moving][order]
            ctx.emit_var(
                m_at[group_starts], dest[group_starts],
                tokens=(pool, 2 * group_sizes),
            )
            keep = ~moving
            self.walk = self.walk[keep]
            self.orig = self.orig[keep]
            self.at = self.at[keep]

    def outputs(self, ctx: ColumnarContext) -> list:
        held: list[list] = [[] for _ in range(ctx.n)]
        for walk, origin, vertex in zip(
            self.walk.tolist(), self.orig.tolist(), self.at.tolist()
        ):
            held[vertex].append((walk, origin))
        return [
            (tuple(sorted(held[i])), int(self.discarded[i]),
             int(self.max_load[i]))
            for i in range(ctx.n)
        ]


_WALK_ROUTER_VARIANTS = {
    "object": WalkTokenRouter,
    "columnar": ColumnarWalkTokenRouter,
}


def schedule_hash(schedule: "WalkSchedule") -> KWiseHash:
    """The k-wise family member a :class:`WalkSchedule` names (the
    object every vertex reconstructs from the broadcast description)."""
    return KWiseHash(
        k=schedule.k, range_size=2 * schedule.degree, seed=schedule.seed,
        prime=VECTOR_PRIME,
    )


def execute_walk_schedule(
    regular: RegularizedSplit,
    origins: Sequence[tuple],
    schedule: "WalkSchedule",
    congestion_cap: int | None = None,
    model: str = "local",
    plane: str | None = "auto",
) -> dict:
    """Run a found schedule as real message passing over fG⋄.

    The distributed counterpart of :func:`simulate_walks`: walk tokens
    are forwarded by :class:`WalkTokenRouter` (or its columnar port,
    picked by ``plane`` through the runtime registry) and the returned
    dict has the same ``final`` / ``discarded`` / ``max_load`` shape —
    equal entry for entry to the centralized simulation — plus the
    measured :class:`~repro.congest.metrics.NetworkMetrics` under
    ``"metrics"``.  ``model`` defaults to ``"local"`` because a step's
    token lists exceed one O(log n)-bit message; the paper serializes
    them over 3r rounds per step
    (:meth:`WalkSchedule.execution_rounds`), which stays the analytic
    round cost.
    """
    r = schedule.walks_per_message
    cap = congestion_cap if congestion_cap is not None else 3 * r
    if len(origins) * max(1, r) >= (1 << 20):
        raise ValueError(
            "walk ids must fit the hash family's 20-bit key packing"
        )
    inputs: dict = {}
    message_ids = []
    for i, (message_id, start) in enumerate(origins):
        message_ids.append(message_id)
        origin_index = regular.index[start]
        flat = inputs.setdefault(start, [])
        for beta in range(r):
            flat.extend((i * r + beta, origin_index))
    net = Network(regular.split.split, model=model)
    algorithm = variant_for_plane(_WALK_ROUTER_VARIANTS, plane)(
        regular.degree, schedule.steps, cap, schedule_hash(schedule)
    )
    outputs = net.run(
        algorithm,
        max_rounds=schedule.steps + 3,
        inputs={v: tuple(flat) for v, flat in inputs.items()},
        plane=plane,
    )
    position: dict[int, Hashable] = {}
    discarded = 0
    max_load = 0
    for vertex, (tokens, vertex_discarded, vertex_peak) in outputs.items():
        discarded += vertex_discarded
        if vertex_peak > max_load:
            max_load = vertex_peak
        for walk, _origin in tokens:
            position[walk] = vertex
    final: dict = {}
    for i, message_id in enumerate(message_ids):
        survivors = [
            position[j] for j in range(i * r, (i + 1) * r) if j in position
        ]
        if survivors:
            final[message_id] = survivors
    return {
        "final": final,
        "discarded": discarded,
        "max_load": max_load,
        "metrics": net.metrics,
    }


def _message_origins(graph: nx.Graph, v_star: Hashable) -> list[tuple]:
    """The paper's message set: the i-th of deg(v) messages of vertex v
    starts at split vertex (v, i); v⋆'s own messages are home already."""
    origins = []
    for v in graph.nodes:
        if v == v_star:
            continue
        for i in range(graph.degree[v]):
            origins.append(((v, i), (v, i)))
    return origins


def _good_fraction(
    graph: nx.Graph,
    regular: RegularizedSplit,
    v_star: Hashable,
    outcome: dict,
    total_messages: int,
) -> tuple[float, set]:
    sink = set(regular.split.gadget_vertices(v_star))
    delivered = {
        message_id
        for message_id, finals in outcome["final"].items()
        if any(p in sink for p in finals)
    }
    return len(delivered) / max(1, total_messages), delivered


def find_walk_schedule(
    graph: nx.Graph,
    v_star: Hashable,
    f: float = 0.25,
    phi_hint: float | None = None,
    constant_c: float = 1.0,
    mixing_constant: float = 2.0,
    independence: int | None = None,
    max_seeds: int = 64,
) -> tuple[WalkSchedule, set]:
    """Lemma 2.5: deterministically find a routing schedule for ``graph``.

    The vertex that knows the topology (a cluster leader) runs this
    locally: enumerate hash seeds 0, 1, 2, … and return the first whose
    simulated walks deliver ≥ (1 − f) of the messages.  Existence of a
    witness follows from Lemmas 2.3/2.4; ``max_seeds`` guards against
    misparameterization (raise rather than loop forever).

    ``independence`` overrides the k used for the hash family; the
    paper-accurate k = (1 + log d)·2r·τ is the default shape but any
    k ≥ 4 reproduces the routing behaviour (only the proof needs full k);
    see DESIGN.md.  Returns (schedule, delivered message ids).
    """
    schedule, delivered, _regular, _origins = _find_walk_schedule_full(
        graph, v_star, f=f, phi_hint=phi_hint, constant_c=constant_c,
        mixing_constant=mixing_constant, independence=independence,
        max_seeds=max_seeds,
    )
    return schedule, delivered


def _find_walk_schedule_full(
    graph: nx.Graph,
    v_star: Hashable,
    f: float = 0.25,
    phi_hint: float | None = None,
    constant_c: float = 1.0,
    mixing_constant: float = 2.0,
    independence: int | None = None,
    max_seeds: int = 64,
) -> tuple[WalkSchedule, set, "RegularizedSplit | None", list]:
    """:func:`find_walk_schedule` plus the regularized split and message
    origins it built — callers that go on to *execute* the schedule
    (:func:`execute_walk_schedule`) reuse them instead of rebuilding the
    per-vertex gadget construction.  ``regular`` is ``None`` (and
    ``origins`` empty) for edgeless graphs."""
    if not 0 < f < 0.5:
        raise ValueError("f must lie in (0, 1/2)")
    m = graph.number_of_edges()
    if m == 0:
        schedule = WalkSchedule(0, 0, 0, 2, 4, 1.0)
        return schedule, set(), None, []
    regular = build_regularized_split(graph)
    n_split = len(regular.vertices)
    if phi_hint is None:
        phi_hint = 0.2  # caller normally passes the decomposition's φ
    tau = max(
        2,
        math.ceil(mixing_constant * (phi_hint ** -2) * math.log(max(2, n_split))),
    )
    r, k_paper = _walk_parameters(graph, v_star, f, tau, constant_c)
    k = independence if independence is not None else min(k_paper, 16)

    origins = _message_origins(graph, v_star)
    total_messages = len(origins)

    target = 1.0 - f
    best: tuple[float, int, set] | None = None
    for seed in range(max_seeds):
        h = KWiseHash(
            k=k, range_size=2 * regular.degree, seed=seed, prime=VECTOR_PRIME
        )
        outcome = simulate_walks(regular, origins, h, r, tau)
        fraction, delivered = _good_fraction(
            graph, regular, v_star, outcome, total_messages
        )
        if best is None or fraction > best[0]:
            best = (fraction, seed, delivered)
        if fraction >= target:
            schedule = WalkSchedule(
                seed=seed,
                walks_per_message=r,
                steps=tau,
                degree=regular.degree,
                k=k,
                good_fraction=fraction,
            )
            # v⋆'s own deg(v⋆) messages are home already.
            for i in range(graph.degree[v_star]):
                delivered.add((v_star, i))
            return schedule, delivered, regular, origins
    raise RuntimeError(
        f"no seed among {max_seeds} reached delivery {target:.3f}; best was "
        f"{best[0]:.3f} (seed {best[1]}) — increase r via constant_c"
    )


def find_shared_walk_schedule(
    subgraphs: Sequence[nx.Graph],
    sinks: Sequence[Hashable],
    f: float = 0.25,
    phi_hint: float | None = None,
    constant_c: float = 1.0,
    mixing_constant: float = 2.0,
    independence: int | None = None,
    max_seeds: int = 64,
) -> tuple[WalkSchedule, list[set]]:
    """Lemma 2.6: one schedule shared by many disjoint subgraphs.

    Uses a single hash seed for all subgraphs; r and τ are maxima over the
    subgraphs (the paper's η and ζ).  The delivery guarantee is aggregate:
    ≥ (1 − f) of the union of all messages.  Returns the schedule and the
    per-subgraph delivered sets.
    """
    if len(subgraphs) != len(sinks):
        raise ValueError("need one sink per subgraph")
    live = [
        (g, sink) for g, sink in zip(subgraphs, sinks) if g.number_of_edges() > 0
    ]
    if not live:
        return WalkSchedule(0, 0, 0, 2, 4, 1.0), [set() for _ in subgraphs]
    regulars = [build_regularized_split(g) for g, _ in live]
    if phi_hint is None:
        phi_hint = 0.2
    zeta = max(len(r.vertices) for r in regulars)
    tau = max(
        2, math.ceil(mixing_constant * (phi_hint ** -2) * math.log(max(2, zeta)))
    )
    r_value = 2
    for (g, sink) in live:
        r_i, _ = _walk_parameters(g, sink, f, tau, constant_c)
        r_value = max(r_value, r_i)
    degree = max(r.degree for r in regulars)
    k = independence if independence is not None else 16

    payloads = []
    total_messages = 0
    for (g, sink), regular in zip(live, regulars):
        origins = []
        for v in g.nodes:
            if v == sink:
                continue
            for i in range(g.degree[v]):
                origins.append(((v, i), (v, i)))
                total_messages += 1
        payloads.append((g, sink, regular, origins))

    target = 1.0 - f
    best_fraction = -1.0
    for seed in range(max_seeds):
        h = KWiseHash(k=k, range_size=2 * degree, seed=seed, prime=VECTOR_PRIME)
        all_delivered: list[set] = []
        delivered_count = 0
        for g, sink, regular, origins in payloads:
            # Each subgraph uses its own slot tables but the shared hash;
            # decisions ≥ 2·d_i fall back to "stay" (a lazy step), which
            # preserves the walk distribution shape.
            outcome = simulate_walks(regular, origins, h, r_value, tau)
            _, delivered = _good_fraction(g, regular, sink, outcome, 1)
            all_delivered.append(delivered)
            delivered_count += len(delivered)
        fraction = delivered_count / max(1, total_messages)
        best_fraction = max(best_fraction, fraction)
        if fraction >= target:
            schedule = WalkSchedule(
                seed=seed,
                walks_per_message=r_value,
                steps=tau,
                degree=degree,
                k=k,
                good_fraction=fraction,
            )
            # Re-inflate to the original subgraph list (empty graphs → ∅),
            # and credit each sink its own messages.
            out: list[set] = []
            live_iter = iter(zip(live, all_delivered))
            for g, sink in zip(subgraphs, sinks):
                if g.number_of_edges() == 0:
                    out.append(set())
                    continue
                (_, _), delivered = next(live_iter)
                for i in range(g.degree[sink]):
                    delivered.add((sink, i))
                out.append(delivered)
            return schedule, out
    raise RuntimeError(
        f"no shared seed among {max_seeds} reached delivery {target:.3f}; "
        f"best was {best_fraction:.3f}"
    )


def broadcast_schedule(
    graph: nx.Graph,
    v_star: Hashable,
    schedule: WalkSchedule,
    model: str = "congest",
    plane: str | None = "auto",
    include_coefficients: bool = False,
):
    """Lemma 2.5's distribution step, actually simulated.

    The leader v⋆ knows the schedule; every vertex must learn it before
    the walks can run.  Flood the schedule's description — ``(seed, r, τ,
    d, k)``, an O(log n)-bit payload — from v⋆ through
    :func:`repro.congest.algorithms.flood_values`; ``plane`` selects the
    execution plane by runtime-registry name (``"auto"`` runs the
    variable-width columnar flood, byte-identical to the object plane).
    With ``include_coefficients=True`` the k expanded hash coefficients
    ride along (:meth:`~repro.gathering.kwise.KWiseHash.describe`), so
    the payload length varies with k — the description then usually
    exceeds one CONGEST message and needs ``model="local"``, which is
    exactly the paper's point in broadcasting only the O(k log n)-bit
    seed.  Returns ``(outputs, metrics)``: every vertex's received
    description plus the measured round/message/bit counts of the flood.
    """
    from repro.congest.algorithms import flood_values

    payload = (
        schedule.seed,
        schedule.walks_per_message,
        schedule.steps,
        schedule.degree,
        schedule.k,
    )
    if include_coefficients:
        payload = payload + schedule_hash(schedule).coefficients
    return flood_values(graph, v_star, payload, model=model, plane=plane)


def gather_with_random_walks(
    graph: nx.Graph,
    v_star: Hashable,
    f: float = 0.25,
    simulate_schedule_broadcast: bool = False,
    simulate_walk_routing: bool = False,
    plane: str | None = "auto",
    **kwargs,
) -> tuple[set, int, WalkSchedule]:
    """Convenience wrapper: find a schedule and report (delivered, rounds).

    Rounds = schedule broadcast cost (schedule_bits / bandwidth, charged
    as ⌈bits / log n⌉·D̂ with D̂ folded into execution rounds by the
    caller) + 3rτ execution; we return the execution rounds, the paper's
    dominant term.  With ``simulate_schedule_broadcast=True`` the
    Lemma 2.5 distribution step is run through the simulator
    (:func:`broadcast_schedule`) and its *measured* rounds are added to
    the returned total.  With ``simulate_walk_routing=True`` the found
    schedule is additionally *executed* as real message passing over fG⋄
    (:func:`execute_walk_schedule`, on the execution plane named by
    ``plane``) and the delivered set is cross-checked against the
    leader's centralized search — a divergence raises.
    """
    schedule, delivered, regular, origins = _find_walk_schedule_full(
        graph, v_star, f=f, **kwargs
    )
    rounds = schedule.execution_rounds()
    if simulate_walk_routing and regular is not None:
        outcome = execute_walk_schedule(
            regular, origins, schedule, plane=plane
        )
        _, routed = _good_fraction(
            graph, regular, v_star, outcome, len(origins)
        )
        for i in range(graph.degree[v_star]):
            routed.add((v_star, i))
        if routed != delivered:
            raise RuntimeError(
                "simulated walk routing diverged from the leader's "
                "schedule search"
            )
    if simulate_schedule_broadcast:
        outputs, metrics = broadcast_schedule(
            graph, v_star, schedule, plane=plane
        )
        if any(received is None for received in outputs.values()):
            raise RuntimeError("schedule broadcast did not reach all vertices")
        rounds += metrics.rounds
    return delivered, rounds, schedule
