"""k-wise independent hash families over a prime field (Section 2.2).

The paper implements the coin flips of the lazy random walks with a k-wise
independent family: a random degree-(k−1) polynomial over GF(p) evaluated
at the (step, walk, sender-id) triple, reduced to the walk's decision range
{1, …, 2d}.  Any k evaluations of a random degree-(k−1) polynomial are
mutually independent and uniform over GF(p) — the textbook construction
the paper cites [AS15].

The family is *explicit*: a member is identified by an integer ``seed``
that encodes the k coefficients in base p, so a seed costs k·log2(p) =
O(k log n) bits — matching the paper's "O(k log n) mutually independent
coin flips" accounting.  Derandomization (Lemma 2.5) enumerates seeds in
increasing order and keeps the first one that routes well.
"""

from __future__ import annotations

from dataclasses import dataclass


_DEFAULT_PRIME = (1 << 61) - 1  # Mersenne prime: fast reduction, huge field.
VECTOR_PRIME = (1 << 31) - 1  # Mersenne prime small enough for uint64 Horner.


def _splitmix64(value: int) -> int:
    """SplitMix64 finalizer: a 64-bit bijective mixing function."""
    value = (value + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return value ^ (value >> 31)


def _is_probable_prime(n: int) -> bool:
    """Deterministic Miller–Rabin for 64-bit inputs."""
    if n < 2:
        return False
    for p in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        if n % p == 0:
            return n == p
    d, s = n - 1, 0
    while d % 2 == 0:
        d //= 2
        s += 1
    for a in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(s - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


def next_prime(n: int) -> int:
    """Smallest prime ≥ n (for custom field sizes in tests)."""
    candidate = max(2, n)
    while not _is_probable_prime(candidate):
        candidate += 1
    return candidate


@dataclass(frozen=True)
class KWiseHash:
    """One member of a k-wise independent family: h_seed : Z → {0, …, R−1}.

    Parameters
    ----------
    k:
        Independence parameter (polynomial degree k − 1).
    range_size:
        Output range R.
    seed:
        Index into the family; coefficient i is digit i of ``seed`` in
        base p.  Seed 0 is the zero polynomial (still a family member).
    prime:
        Field size; must exceed every hashed key and ``range_size``.
    """

    k: int
    range_size: int
    seed: int = 0
    prime: int = _DEFAULT_PRIME

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError("k must be >= 1")
        if not 1 <= self.range_size < self.prime:
            raise ValueError("range_size must be in [1, prime)")
        if self.seed < 0:
            raise ValueError("seed must be non-negative")
        object.__setattr__(self, "_coefficients", self._expand_coefficients())

    def _expand_coefficients(self) -> tuple[int, ...]:
        """Coefficient vector of family member ``seed``.

        Seeds index the family through a splitmix64 expansion rather than
        plain base-p digits: digit-order enumeration would list all the
        (useless) constant polynomials first, making the deterministic
        first-good-seed search needlessly slow.  The expansion is a
        bijection per coefficient slot for seeds < 2^64, so enumerating
        seeds walks through distinct, "generic" family members; the
        existence bound of Lemmas 2.3/2.4 (a ≥ (1−f) fraction of members
        are good) then gives an O(1) expected search length.
        """
        return tuple(
            _splitmix64(self.seed * 0x9E3779B97F4A7C15 + i) % self.prime
            for i in range(self.k)
        )

    @property
    def coefficients(self) -> tuple[int, ...]:
        return self._coefficients

    @property
    def seed_bits(self) -> int:
        """Description length of this family member: k · log2(p) bits."""
        return self.k * self.prime.bit_length()

    def describe(self, include_coefficients: bool = False) -> tuple[int, ...]:
        """A flat integer tuple describing this family member — the
        broadcastable form of the Lemma 2.5 schedule payload
        (:func:`repro.gathering.random_walks.broadcast_schedule` floods
        it as one variable-width columnar sequence).

        The base description is ``(k, range_size, prime, seed)``; with
        ``include_coefficients=True`` the k expanded coefficients ride
        along, so the description length *varies with k* — receivers
        then skip the splitmix64 expansion and
        :meth:`from_description` verifies the coefficients against the
        seed.

        >>> h = KWiseHash(k=3, range_size=8, seed=5)
        >>> KWiseHash.from_description(h.describe()) == h
        True
        >>> len(h.describe(include_coefficients=True))
        7
        """
        base = (self.k, self.range_size, self.prime, self.seed)
        if include_coefficients:
            return base + self.coefficients
        return base

    @classmethod
    def from_description(cls, description) -> "KWiseHash":
        """Rebuild a hash from :meth:`describe` output (any integer
        sequence, e.g. a flood's received tuple).  Trailing coefficients,
        if present, are checked against the seed's expansion — a
        corrupted broadcast fails loudly instead of mis-routing."""
        description = tuple(int(v) for v in description)
        if len(description) < 4:
            raise ValueError(
                f"hash description needs at least (k, range_size, prime, "
                f"seed); got {len(description)} values"
            )
        k, range_size, prime, seed = description[:4]
        member = cls(k=k, range_size=range_size, seed=seed, prime=prime)
        coefficients = description[4:]
        if coefficients and coefficients != member.coefficients:
            raise ValueError(
                "hash description coefficients do not match the seed's "
                "expansion"
            )
        return member

    def __call__(self, key: int) -> int:
        x = key % self.prime
        acc = 0
        # Horner evaluation of Σ a_i x^i with a_i = digits of seed.
        for a in reversed(self.coefficients):
            acc = (acc * x + a) % self.prime
        return acc % self.range_size

    def hash_triple(self, step: int, walk: int, sender: int) -> int:
        """The paper's h(α, β, γ): decision for step α of walk β from γ.

        The triple is packed injectively (fields bounded by 2^20 each,
        far above any instance size we simulate).
        """
        key = ((step << 40) | (walk << 20) | sender) + 1
        return self(key)

    def hash_triples_vectorized(self, step: int, walks, senders):
        """Vectorized ``hash_triple`` over numpy arrays of walk/sender ids.

        Requires ``prime < 2^31`` so that Horner products fit in uint64
        without overflow.  Returns a uint64 array of values in
        ``[0, range_size)``.
        """
        import numpy as np

        if self.prime >= (1 << 31):
            raise ValueError(
                "vectorized evaluation needs prime < 2^31; construct the "
                "hash with prime=VECTOR_PRIME"
            )
        walks = np.asarray(walks, dtype=np.uint64)
        senders = np.asarray(senders, dtype=np.uint64)
        keys = (
            (np.uint64(step) << np.uint64(40))
            | (walks << np.uint64(20))
            | senders
        ) + np.uint64(1)
        p = np.uint64(self.prime)
        x = keys % p
        acc = np.zeros_like(x)
        for a in reversed(self._coefficients):
            acc = (acc * x + np.uint64(a)) % p
        return acc % np.uint64(self.range_size)
