"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
``decompose``
    Build an (ε, D, T)-decomposition of a generated instance and print
    the measured parameters (Theorem 1.1).
``approximate``
    Run one of the Section 6.1 approximation algorithms.
``test-property``
    Run the Corollary 6.6 property tester.
``gather``
    Run an information-gathering backend on an expander instance
    (Lemmas 2.2 / 2.5).
``simulate``
    Sweep a classic CONGEST baseline (Luby MIS, proposal matching,
    (Δ+1)-colouring, BFS) over ``--trials N`` seeds through the
    runtime's batched :func:`repro.congest.run_many` runner.  ``--plane``
    picks the execution plane by runtime-registry name (``auto`` resolves
    per problem and grid-batches serial columnar sweeps into one
    trial-major grid; ``grid`` forces that batching), and
    ``--processes N`` fans per-trial execution over worker processes.
    ``--faults 'crash=0.01,drop=0.05,delay=2'`` injects a
    :class:`repro.congest.FaultPlan` (reseeded per trial);
    ``--max-rounds`` overrides the per-problem horizon, and exhausting
    it exits with a diagnostic instead of a traceback.
    ``--workers host:port[,host:port...]`` dispatches the sweep across
    fabric worker daemons through the fault-tolerant coordinator
    (:func:`repro.congest.run_many_fabric`) — results stay
    byte-identical to the local sweep; ``--checkpoint PATH`` journals
    completed trial blocks crash-safely and ``--resume`` re-runs only
    the missing ones; unreachable workers degrade to in-process
    execution unless ``--no-local-fallback`` asks for a diagnostic
    (exit 2) instead.
``fabric-worker``
    Run a long-lived sweep-fabric worker daemon
    (:class:`repro.congest.FabricWorker`): binds ``--host``/``--port``
    (port 0 picks a free one, printed on stdout so spawners can scrape
    it) and executes trial blocks shipped by a coordinator until
    killed.

Instances are specified as ``family:size[:seed]`` with families
``grid``, ``tri-grid``, ``planar``, ``tree``, ``outerplanar``, ``cactus``,
``path``, ``cycle``, ``expander``.
"""

from __future__ import annotations

import argparse
import sys

import networkx as nx


def build_instance(spec: str) -> nx.Graph:
    """Parse ``family:size[:seed]`` into a graph."""
    from repro import graphs

    parts = spec.split(":")
    if len(parts) < 2:
        raise ValueError("instance spec must be family:size[:seed]")
    family, size = parts[0], int(parts[1])
    seed = int(parts[2]) if len(parts) > 2 else 0
    side = max(2, round(size ** 0.5))
    builders = {
        "grid": lambda: graphs.grid_graph(side, side),
        "tri-grid": lambda: graphs.triangulated_grid(side, side),
        "planar": lambda: graphs.random_planar_triangulation(size, seed),
        "tree": lambda: graphs.random_tree(size, seed),
        "outerplanar": lambda: graphs.random_outerplanar(size, seed),
        "cactus": lambda: graphs.random_cactus(size, seed),
        "path": lambda: graphs.path_graph(size),
        "cycle": lambda: graphs.cycle_graph(size),
        "expander": lambda: graphs.random_regular_expander(
            size + (size % 2), 4, seed
        ),
    }
    if family not in builders:
        raise ValueError(
            f"unknown family {family!r}; choose from {sorted(builders)}"
        )
    return builders[family]()


def cmd_decompose(args: argparse.Namespace) -> int:
    from repro import edt_decomposition
    from repro.decomposition.edt import run_gather_on_groups

    graph = build_instance(args.instance)
    decomposition = edt_decomposition(graph, args.epsilon, variant=args.variant)
    print(f"instance: {args.instance} "
          f"(n={graph.number_of_nodes()}, m={graph.number_of_edges()})")
    print(f"cut fraction: {decomposition.epsilon(graph):.4f} (target {args.epsilon})")
    print(f"max cluster diameter: {decomposition.diameter(graph)}")
    print(f"clusters: {len(decomposition.cluster_members())}")
    print(f"construction rounds (ledger): {decomposition.construction_rounds}")
    if args.measure_routing:
        measured = run_gather_on_groups(
            graph, decomposition, backend="load_balancing"
        )
        print(f"measured routing T: {measured}")
    return 0


def cmd_approximate(args: argparse.Namespace) -> int:
    from repro.applications import (
        approximate_max_cut,
        approximate_maximum_independent_set,
        approximate_maximum_matching,
        approximate_minimum_dominating_set,
        approximate_minimum_vertex_cover,
    )
    from repro.applications._template import kpr_decomposer

    solvers = {
        "max-cut": approximate_max_cut,
        "matching": approximate_maximum_matching,
        "vertex-cover": approximate_minimum_vertex_cover,
        "independent-set": approximate_maximum_independent_set,
        "dominating-set": approximate_minimum_dominating_set,
    }
    graph = build_instance(args.instance)
    decomposer = kpr_decomposer if args.fast else None
    kwargs = {"decomposer": decomposer} if decomposer else {}
    result = solvers[args.problem](graph, args.epsilon, **kwargs)
    print(f"instance: {args.instance} "
          f"(n={graph.number_of_nodes()}, m={graph.number_of_edges()})")
    print(f"problem: {args.problem}  ε = {args.epsilon}")
    print(f"objective value: {result.value}")
    print(f"clusters: {result.total_clusters} "
          f"(exactly solved: {result.exact_clusters})")
    print(f"construction rounds: {result.construction_rounds}")
    return 0


def cmd_test_property(args: argparse.Namespace) -> int:
    from repro.applications import PROPERTY_REGISTRY, test_minor_closed_property

    graph = build_instance(args.instance)
    verdict = test_minor_closed_property(graph, args.property, epsilon=args.epsilon)
    print(f"instance: {args.instance} "
          f"(n={graph.number_of_nodes()}, m={graph.number_of_edges()})")
    print(f"property: {args.property}  ε = {args.epsilon}")
    print(f"verdict: {'ACCEPT' if verdict.accepted else 'REJECT'}")
    if verdict.reasons:
        print(f"detectors fired: {', '.join(sorted(set(verdict.reasons)))}")
    print(f"rounds: {verdict.rounds}")
    return 0 if verdict.accepted else 1


def cmd_gather(args: argparse.Namespace) -> int:
    from repro.gathering import (
        gather_with_load_balancing,
        gather_with_random_walks,
    )

    graph = build_instance(args.instance)
    sink = max(graph.nodes, key=lambda v: graph.degree[v])
    total = 2 * graph.number_of_edges()
    print(f"instance: {args.instance}  sink: {sink!r}  messages: {total}")
    if args.backend in ("load-balancing", "both"):
        outcome = gather_with_load_balancing(
            graph, sink, f=args.f,
            simulate_arrival_report=args.simulate_routing,
            plane=args.plane,
        )
        print(f"load balancing: delivered {outcome.delivered_fraction:.1%} "
              f"in {outcome.rounds} rounds")
        if outcome.report_metrics is not None:
            report = outcome.report_metrics
            print(f"  arrival report ({args.plane} plane): "
                  f"{report.rounds} rounds, {report.messages} messages, "
                  f"{report.total_bits} bits")
    if args.backend in ("walks", "both"):
        delivered, rounds, schedule = gather_with_random_walks(
            graph, sink, f=args.f, phi_hint=0.15,
            simulate_walk_routing=args.simulate_routing,
            plane=args.plane,
        )
        print(f"random walks:   delivered {len(delivered) / total:.1%} "
              f"in {rounds} rounds (seed {schedule.seed}, "
              f"{schedule.schedule_bits}-bit schedule)")
        if args.simulate_routing:
            print(f"  walk routing simulated on the {args.plane} plane: "
                  f"token forwarding matched the leader's schedule search")
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    import os
    import random
    import time

    from repro.congest import FaultPlan, Trial, run_many
    from repro.congest.algorithms import BFSTreeAlgorithm, ColumnarBFSTree
    from repro.congest.classic import (
        ColumnarLubyMIS,
        ColumnarTrialColoring,
        LubyMISAlgorithm,
        ProposalMatchingAlgorithm,
        TrialColoringAlgorithm,
    )
    from repro.congest.runtime import (
        plane_names,
        supports_vectorized,
        variant_for_plane,
    )

    graph = build_instance(args.instance)
    n = graph.number_of_nodes()
    needs_inputs = True
    # Each problem declares its implementations per plane *family*; the
    # runtime registry maps the requested --plane name to a family (and
    # raises with the registry-derived supported list when a problem has
    # no implementation for it — no hand-maintained error text).
    if args.problem == "mis":
        horizon = 20 * max(4, n.bit_length() ** 2)
        variants = {
            "object": lambda: LubyMISAlgorithm(horizon),
            "columnar": lambda: ColumnarLubyMIS(horizon),
        }

        def summarize(outputs):
            return f"|IS| = {sum(1 for flag in outputs.values() if flag)}"
    elif args.problem == "matching":
        horizon = 40 * max(4, n.bit_length() ** 2)
        variants = {"object": lambda: ProposalMatchingAlgorithm(horizon)}

        def summarize(outputs):
            matched = sum(
                1 for partner in outputs.values() if partner is not None
            )
            return f"|M| = {matched // 2}"
    elif args.problem == "coloring":
        delta = max((d for _, d in graph.degree), default=0)
        horizon = 40 * max(4, n.bit_length() ** 2)
        variants = {
            "object": lambda: TrialColoringAlgorithm(delta + 1, horizon),
            "columnar": lambda: ColumnarTrialColoring(delta + 1, horizon),
        }

        def summarize(outputs):
            return f"colors = {len(set(outputs.values()))}"
    else:  # bfs
        root = min(graph.nodes, key=repr)
        horizon = n + 2
        variants = {
            "object": lambda: BFSTreeAlgorithm(root, horizon),
            "columnar": lambda: ColumnarBFSTree(root, horizon),
        }
        needs_inputs = False

        def summarize(outputs):
            reached = sum(1 for out in outputs.values() if out is not None)
            return f"reached = {reached}/{n}"

    try:
        algorithm = variant_for_plane(variants, args.plane)()
    except ValueError as exc:
        raise SystemExit(str(exc)) from None

    if args.rng == "vectorized" and not supports_vectorized(algorithm):
        # Registry-derived diagnostic (like --plane resolution and
        # --no-local-fallback): name the incompatible combination and the
        # planes whose variant *does* draw vectorized, instead of failing
        # deep inside execution.
        supporting = []
        for name in plane_names():
            try:
                candidate = variant_for_plane(variants, name)()
            except ValueError:
                continue
            if supports_vectorized(candidate):
                supporting.append(name)
        detail = (
            f"planes with a vectorized variant: {', '.join(supporting)}"
            if supporting
            else f"no registered plane has a vectorized variant of "
                 f"problem {args.problem!r}"
        )
        print(
            f"simulate: --rng vectorized is not supported by "
            f"{type(algorithm).__name__} (plane {args.plane!r}, rng_modes "
            f"{tuple(getattr(algorithm, 'rng_modes', ('exact',)))}); "
            f"{detail}",
            file=sys.stderr,
        )
        return 2

    plan = None
    if args.faults is not None:
        try:
            plan = FaultPlan.parse(args.faults)
        except ValueError as exc:
            raise SystemExit(f"--faults: {exc}") from None

    max_rounds = args.max_rounds if args.max_rounds is not None else horizon + 2
    rng = random.Random(args.seed)
    trials = []
    for index in range(args.trials):
        inputs = (
            {v: rng.randrange(1 << 30) for v in graph.nodes}
            if needs_inputs
            else None
        )
        trials.append(
            Trial(graph, inputs=inputs, max_rounds=max_rounds,
                  model=args.model,
                  faults=plan.reseed(plan.seed + index) if plan else None)
        )

    if args.resume and args.checkpoint is None:
        raise SystemExit("--resume requires --checkpoint")

    fabric_stats = None
    start = time.perf_counter()
    try:
        if args.workers or args.checkpoint:
            # Fabric path: worker daemons, or a checkpointed (crash-safe,
            # resumable) sweep executed in-process when none are given.
            from repro.congest import FabricStats, run_many_fabric
            from repro.congest.runtime.fabric.coordinator import (
                parse_worker_address,
            )

            try:
                addresses = [
                    parse_worker_address(spec)
                    for spec in args.workers.split(",")
                ] if args.workers else []
            except ValueError as exc:
                raise SystemExit(f"--workers: {exc}") from None
            fabric_stats = FabricStats()
            results = run_many_fabric(
                algorithm, trials, addresses, plane=args.plane,
                rng=args.rng,
                checkpoint=args.checkpoint, resume=args.resume,
                fallback="error" if args.no_local_fallback else "local",
                stats=fabric_stats,
            )
        else:
            results = run_many(
                algorithm, trials, processes=args.processes,
                plane=args.plane, rng=args.rng,
            )
    except RuntimeError as exc:
        from repro.congest import FabricUnavailableError

        if isinstance(exc, FabricUnavailableError):
            # The coordinator found nobody to run the sweep and local
            # fallback was disabled: diagnose instead of tracebacking.
            print(f"simulate: {exc}; start workers with "
                  f"'python -m repro fabric-worker --port N' or drop "
                  f"--no-local-fallback",
                  file=sys.stderr)
            return 2
        if "did not halt within" not in str(exc):
            raise
        # Routine under fault injection: the adversary starved the
        # algorithm past its round cap.  Diagnose instead of tracebacking.
        print(f"simulate: {exc} "
              f"(instance {args.instance}, problem {args.problem}"
              f"{', faults ' + args.faults if args.faults else ''}); "
              f"raise --max-rounds or weaken --faults",
              file=sys.stderr)
        return 2
    elapsed = time.perf_counter() - start

    print(f"instance: {args.instance} "
          f"(n={n}, m={graph.number_of_edges()})  problem: {args.problem}")
    print(f"trials: {args.trials}  processes: {args.processes}  "
          f"available cpus: {os.cpu_count() or 1}  model: {args.model}  "
          f"plane: {args.plane}  rng: {args.rng}"
          + (f"  workers: {args.workers}" if args.workers else "")
          + (f"  faults: {args.faults}" if args.faults else ""))
    for index, (outputs, metrics) in enumerate(results):
        fault_note = ""
        if plan is not None:
            fault_note = (f"  dropped = {metrics.dropped}  "
                          f"duplicated = {metrics.duplicated}  "
                          f"delayed = {metrics.delayed}  "
                          f"crashed = {metrics.crashed}  "
                          f"corrupted = {metrics.corrupted}")
        print(f"  trial {index}: rounds = {metrics.rounds}  "
              f"messages = {metrics.messages}  bits = {metrics.total_bits}  "
              f"{summarize(outputs)}{fault_note}")
    total_rounds = sum(metrics.rounds for _, metrics in results)
    total_messages = sum(metrics.messages for _, metrics in results)
    total_bits = sum(metrics.total_bits for _, metrics in results)
    print(f"sweep total: rounds = {total_rounds}  "
          f"messages = {total_messages}  bits = {total_bits}  "
          f"wall clock = {elapsed:.3f}s")
    if fabric_stats is not None:
        # One-line fabric summary: what the coordinator actually did
        # (dispatch, retry, speculate, fall back) across the sweep.
        print(f"fabric: {fabric_stats.summary()}")
    if plan is not None:
        # One-line adversary summary: what the fault plan actually did
        # across the sweep, without JSON spelunking.
        print("faults: crashed = {}  dropped = {}  duplicated = {}  "
              "delayed = {}  corrupted = {}".format(
                  *(sum(getattr(metrics, field) for _, metrics in results)
                    for field in ("crashed", "dropped", "duplicated",
                                  "delayed", "corrupted"))))
    return 0


def cmd_fabric_worker(args: argparse.Namespace) -> int:
    import os

    from repro.congest import FabricWorker

    worker = FabricWorker(
        args.host, args.port, heartbeat_interval=args.heartbeat_interval
    )
    host, port = worker.address
    # Machine-scrapable banner: spawners (benchmarks, the identity
    # checker, tests) read the bound port from the first stdout line.
    print(f"fabric-worker: listening on {host}:{port} (pid {os.getpid()})",
          flush=True)
    try:
        worker.serve_forever()
    except KeyboardInterrupt:
        pass
    return 0


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Minor-free network decomposition toolkit (PODC 2023 repro)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("decompose", help="build an (ε, D, T)-decomposition")
    p.add_argument("instance", help="family:size[:seed], e.g. planar:200:1")
    p.add_argument("--epsilon", type=float, default=0.25)
    p.add_argument("--variant", choices=["51", "52"], default="52")
    p.add_argument("--measure-routing", action="store_true")
    p.set_defaults(func=cmd_decompose)

    p = sub.add_parser("approximate", help="run a Section 6.1 algorithm")
    p.add_argument("problem", choices=[
        "max-cut", "matching", "vertex-cover", "independent-set",
        "dominating-set",
    ])
    p.add_argument("instance")
    p.add_argument("--epsilon", type=float, default=0.25)
    p.add_argument("--fast", action="store_true",
                   help="use the KPR decomposer instead of Theorem 1.1")
    p.set_defaults(func=cmd_approximate)

    p = sub.add_parser("test-property", help="run the Corollary 6.6 tester")
    p.add_argument("property", choices=["planar", "forest", "outerplanar",
                                        "cactus"])
    p.add_argument("instance")
    p.add_argument("--epsilon", type=float, default=0.2)
    p.set_defaults(func=cmd_test_property)

    from repro.congest.runtime import plane_names

    p = sub.add_parser("gather", help="run an information-gathering backend")
    p.add_argument("instance")
    p.add_argument("--backend", choices=["load-balancing", "walks", "both"],
                   default="both")
    p.add_argument("--f", type=float, default=0.25)
    p.add_argument("--simulate-routing", action="store_true",
                   help="run the routers' communication steps (walk-token "
                        "forwarding, arrival notification) through the "
                        "simulator on the plane given by --plane")
    p.add_argument("--plane", choices=("auto", *plane_names(batch=False),
                                       "dict"),
                   default="auto",
                   help="execution plane for --simulate-routing (runtime "
                        "registry name; 'auto' resolves the variable-width "
                        "columnar routers)")
    p.set_defaults(func=cmd_gather)

    p = sub.add_parser(
        "simulate",
        help="sweep a classic CONGEST baseline through the runtime's "
             "batched run_many",
    )
    p.add_argument("problem", choices=["mis", "matching", "coloring", "bfs"])
    p.add_argument("instance")
    p.add_argument("--trials", type=int, default=1,
                   help="number of seeded trials in the sweep")
    p.add_argument("--processes", type=int, default=1,
                   help="worker processes for run_many (1 = serial)")
    p.add_argument("--model", choices=["congest", "local"], default="congest")
    p.add_argument("--seed", type=int, default=0,
                   help="master seed deriving the per-trial vertex seeds")
    from repro.congest.runtime import plane_names

    p.add_argument("--plane", choices=("auto", *plane_names(), "dict"),
                   default="auto",
                   help="execution plane (runtime registry name); 'auto' "
                        "resolves the fastest plane of the problem's "
                        "implementation family and grid-batches serial "
                        "columnar sweeps; 'grid' forces trial-major grid "
                        "batching; 'dict' is the legacy alias of "
                        "'broadcast'")
    p.add_argument("--rng", choices=["exact", "vectorized"],
                   default="exact",
                   help="randomness discipline (repro.congest.RngPlan): "
                        "'exact' (default) keeps the byte-identity "
                        "per-vertex random.Random streams; 'vectorized' "
                        "draws counter-based Philox columns — "
                        "deterministic and plane-independent, but a "
                        "different stream; requires a plane whose "
                        "variant declares the mode")
    p.add_argument("--faults", metavar="SPEC", default=None,
                   help="fault plan as comma-separated knobs, e.g. "
                        "'crash=0.01,drop=0.05,dup=0.01,delay=2,"
                        "corrupt=0.05,target=degree:0.25,seed=7' "
                        "(repro.congest.FaultPlan.parse); each trial "
                        "reseeds the plan with seed+trial so a sweep "
                        "draws independent fault schedules")
    p.add_argument("--max-rounds", type=int, default=None,
                   help="override the per-problem round horizon (faulty "
                        "runs may need more rounds than the fault-free "
                        "default)")
    p.add_argument("--workers", metavar="HOST:PORT[,...]", default=None,
                   help="dispatch the sweep across fabric worker daemons "
                        "(run_many_fabric); results are byte-identical to "
                        "the local sweep, worker failures are retried and "
                        "re-dispatched automatically")
    p.add_argument("--checkpoint", metavar="PATH", default=None,
                   help="journal completed trial blocks to a crash-safe "
                        "checkpoint file")
    p.add_argument("--resume", action="store_true",
                   help="resume from --checkpoint, re-running only the "
                        "trial blocks it is missing")
    p.add_argument("--no-local-fallback", action="store_true",
                   help="exit with a diagnostic instead of degrading to "
                        "in-process execution when no worker is reachable")
    p.set_defaults(func=cmd_simulate)

    p = sub.add_parser(
        "fabric-worker",
        help="run a long-lived sweep-fabric worker daemon",
    )
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (loopback by default; job payloads "
                        "are pickles, so expose only to trusted networks)")
    p.add_argument("--port", type=int, default=0,
                   help="bind port (0 picks a free one; the bound port is "
                        "printed on stdout)")
    p.add_argument("--heartbeat-interval", type=float, default=0.1,
                   help="seconds between liveness frames while a block "
                        "computes")
    p.set_defaults(func=cmd_fabric_worker)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = make_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
