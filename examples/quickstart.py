"""Quickstart: build an (ε, D, T)-decomposition and exercise its routing.

Runs Theorem 1.1 on a planar instance, validates every invariant of the
decomposition, and then actually executes the routing algorithm A on each
routing group (measuring T rather than trusting the formula).  The last
section demonstrates **execution-plane selection** (``plane=`` on the
simulator wrappers, ``--plane`` on the CLI — see docs/ARCHITECTURE.md):
the same BFS runs on the object plane and on the columnar plane with
byte-identical outputs and metrics.

Usage::

    python examples/quickstart.py [n] [epsilon]
"""

import sys

from repro import edt_decomposition
from repro.congest.algorithms import bfs_tree
from repro.decomposition import check_edt_decomposition
from repro.decomposition.edt import run_gather_on_groups
from repro.graphs import triangulated_grid


def main(side: int = 12, epsilon: float = 0.25) -> None:
    graph = triangulated_grid(side, side)
    print(
        f"instance: {side}x{side} triangulated grid "
        f"(n={graph.number_of_nodes()}, m={graph.number_of_edges()})"
    )
    print(f"target epsilon: {epsilon}")

    decomposition = edt_decomposition(graph, epsilon, variant="52")
    stats = check_edt_decomposition(
        graph, decomposition, epsilon, max_diameter=graph.number_of_nodes()
    )
    print("\n(ε, D, T)-decomposition built and validated:")
    print(f"  clusters:              {stats['clusters']}")
    print(f"  cut fraction (≤ ε):    {stats['cut_fraction']:.4f}")
    print(f"  max cluster diameter:  {stats['max_diameter']}")
    print(f"  construction rounds:   {decomposition.construction_rounds}")

    measured_t = run_gather_on_groups(graph, decomposition, backend="load_balancing")
    print(f"  measured routing T:    {measured_t} rounds "
          f"(load-balancing backend, full Lemma 2.2 pipeline)")

    members = decomposition.cluster_members()
    biggest = max(members.values(), key=len)
    print(f"\nlargest cluster has {len(biggest)} vertices; leader = "
          f"{decomposition.leaders[max(members, key=lambda c: len(members[c]))]!r}")

    # Execution-plane selection: every simulator wrapper takes a runtime
    # registry name (and the CLI takes --plane).  The planes are
    # byte-identical on outputs and metrics; they differ only in speed.
    root = next(iter(graph.nodes))
    tree_obj, metrics_obj = bfs_tree(graph, root, plane="broadcast")
    tree_col, metrics_col = bfs_tree(graph, root, plane="columnar")
    assert tree_obj == tree_col
    assert (metrics_obj.rounds, metrics_obj.messages,
            metrics_obj.total_bits) == (metrics_col.rounds,
                                        metrics_col.messages,
                                        metrics_col.total_bits)
    print("\nexecution planes (see docs/ARCHITECTURE.md):")
    print(f"  bfs_tree(plane='broadcast') == bfs_tree(plane='columnar'): "
          f"{metrics_col.rounds} rounds, {metrics_col.messages} messages, "
          f"{metrics_col.total_bits} bits on both planes")


if __name__ == "__main__":
    side = int(sys.argv[1]) if len(sys.argv) > 1 else 12
    epsilon = float(sys.argv[2]) if len(sys.argv) > 2 else 0.25
    main(side, epsilon)
