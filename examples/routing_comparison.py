"""Ablation: the two information-gathering backends of Section 2.

Compares, on high-conductance instances, the measured delivery fraction
and round cost of

* the GLM load-balancing router (Lemma 2.2), and
* the derandomized lazy-random-walk router (Lemma 2.5),

mirroring the paper's §2.3 discussion of their relative round
complexities (the walk router saves a log factor when the schedule can be
precomputed by a topology-holding leader).

The second half demonstrates **execution-plane selection** (see
docs/ARCHITECTURE.md): the winning walk schedule is *executed* as real
message passing over the regularized split, once on the object plane
(`plane="broadcast"`) and once on the variable-width columnar plane
(`plane="columnar"` — walk-token lists as `VarColumn` pools), with
byte-identical outcomes and the columnar wall-clock win printed.

Usage::

    python examples/routing_comparison.py [n]
"""

import sys
import time

from repro.gathering import (
    build_regularized_split,
    execute_walk_schedule,
    find_walk_schedule,
    gather_with_load_balancing,
    gather_with_random_walks,
)
from repro.gathering.random_walks import _message_origins
from repro.graphs import constant_degree_expander, random_planar_triangulation


def run_plane_comparison(graph, f=0.4):
    """Execute one walk schedule on two planes; print the speedup."""
    sink = max(graph.nodes, key=lambda v: graph.degree[v])
    schedule, _ = find_walk_schedule(
        graph, sink, f=f, phi_hint=0.5, independence=8
    )
    regular = build_regularized_split(graph)
    origins = _message_origins(graph, sink)

    timings = {}
    outcomes = {}
    for plane in ("broadcast", "columnar"):
        t0 = time.time()
        outcomes[plane] = execute_walk_schedule(
            regular, origins, schedule, plane=plane
        )
        timings[plane] = time.time() - t0

    assert outcomes["broadcast"]["final"] == outcomes["columnar"]["final"]
    metrics = outcomes["columnar"]["metrics"]
    speedup = timings["broadcast"] / max(timings["columnar"], 1e-9)
    print("walk-token routing, object plane vs columnar plane "
          f"(n={graph.number_of_nodes()} → {regular.split.n_split} split "
          f"vertices, {metrics.messages} messages):")
    print(f"  object plane   (--plane broadcast): "
          f"{timings['broadcast']:.3f}s wall")
    print(f"  columnar plane (--plane columnar) : "
          f"{timings['columnar']:.3f}s wall  ({speedup:.1f}x, identical "
          f"outcome and metrics)")
    print()


def run_one(name, graph, f=0.25):
    sink = max(graph.nodes, key=lambda v: graph.degree[v])
    total = 2 * graph.number_of_edges()

    t0 = time.time()
    lb = gather_with_load_balancing(graph, sink, f=f)
    lb_time = time.time() - t0

    t0 = time.time()
    delivered, rounds, schedule = gather_with_random_walks(
        graph, sink, f=f, phi_hint=0.15
    )
    rw_time = time.time() - t0

    print(f"{name} (n={graph.number_of_nodes()}, m={graph.number_of_edges()}):")
    print(
        f"  load balancing : delivered {lb.delivered_fraction:6.1%} "
        f"in {lb.rounds:>7} rounds  ({lb.iterations} iterations, "
        f"{lb_time:.2f}s wall)"
    )
    print(
        f"  random walks   : delivered {len(delivered) / total:6.1%} "
        f"in {rounds:>7} rounds  (seed {schedule.seed}, r={schedule.walks_per_message}, "
        f"τ={schedule.steps}, schedule {schedule.schedule_bits} bits, "
        f"{rw_time:.2f}s wall)"
    )
    print()


def main(n: int = 48) -> None:
    print("information-gathering backends, f = 0.25 target miss rate\n")
    run_one("constant-degree expander", constant_degree_expander(n))
    run_one("constant-degree expander (2n)", constant_degree_expander(2 * n))
    # A dense planar cluster: low conductance — the hard case both routers
    # pay φ powers for.
    run_one("planar triangulation", random_planar_triangulation(n, seed=9))
    # Execution-plane ablation on the walk router itself.
    run_plane_comparison(constant_degree_expander(max(24, n // 2)))


if __name__ == "__main__":
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 48
    main(n)
