"""Distributed property testing (Corollary 6.6): accept members of an
additive minor-closed property, reject graphs ε-far from it.

Tests planarity and forest-ness on members (planar triangulations, random
trees) and on ε-far instances (random regular expanders, dense planar
graphs for forest-ness), showing which error detector fires.

Usage::

    python examples/property_testing_demo.py [n] [epsilon]
"""

import sys

from repro.applications import test_minor_closed_property
from repro.graphs import (
    random_planar_triangulation,
    random_regular_expander,
    random_tree,
    triangulated_grid,
)


def report(name: str, verdict) -> None:
    state = "ACCEPT" if verdict.accepted else "REJECT"
    detectors = ", ".join(verdict.reasons) if verdict.reasons else "—"
    print(
        f"  {name:<38} {state:<7} detectors: {detectors:<28} "
        f"rounds={verdict.rounds}"
    )


def main(n: int = 300, epsilon: float = 0.2) -> None:
    print(f"property testing, n≈{n}, ε={epsilon}\n")

    print("property: planarity")
    report(
        "planar triangulation (member)",
        test_minor_closed_property(
            random_planar_triangulation(n, seed=3), "planar", epsilon
        ),
    )
    report(
        "random 6-regular expander (ε-far)",
        test_minor_closed_property(
            random_regular_expander(n, 6, seed=3), "planar", epsilon
        ),
    )

    print("\nproperty: forest")
    report(
        "random tree (member)",
        test_minor_closed_property(random_tree(n, seed=4), "forest", epsilon),
    )
    side = max(3, int(n ** 0.5))
    report(
        "triangulated grid (ε-far)",
        test_minor_closed_property(
            triangulated_grid(side, side), "forest", epsilon
        ),
    )

    print("\nproperty: outerplanar")
    report(
        "random tree (member)",
        test_minor_closed_property(random_tree(n, seed=5), "outerplanar", epsilon),
    )
    report(
        "planar triangulation (ε-far)",
        test_minor_closed_property(
            random_planar_triangulation(n, seed=6), "outerplanar", epsilon
        ),
    )


if __name__ == "__main__":
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 300
    epsilon = float(sys.argv[2]) if len(sys.argv) > 2 else 0.2
    main(n, epsilon)
