"""Distributed approximation on a planar network (Corollaries 6.3–6.5).

Runs all four approximation algorithms on a random planar triangulation
and compares each against its sequential baseline, printing the quality
ratios the paper's (1 ± ε) guarantees predict.

Usage::

    python examples/approximation_suite.py [n] [epsilon]
"""

import sys

from repro.applications import (
    approximate_max_cut,
    approximate_maximum_independent_set,
    approximate_maximum_matching,
    approximate_minimum_vertex_cover,
    greedy_matching,
    greedy_maximal_independent_set,
    greedy_vertex_cover,
    local_search_max_cut,
)
from repro.applications._template import kpr_decomposer
from repro.graphs import random_planar_triangulation


def main(n: int = 150, epsilon: float = 0.25) -> None:
    graph = random_planar_triangulation(n, seed=11)
    m = graph.number_of_edges()
    print(f"instance: random planar triangulation (n={n}, m={m}), ε={epsilon}\n")

    result = approximate_max_cut(graph, epsilon, decomposer=kpr_decomposer)
    _, baseline_cut = local_search_max_cut(graph)
    print("max cut (Cor 6.3):")
    print(f"  decomposition cut:  {result.value}  (≥ (1−ε)·OPT; OPT ≥ m/2 = {m // 2})")
    print(f"  local-search base:  {baseline_cut}")
    print(f"  clusters solved exactly: {result.exact_clusters}/{result.total_clusters}\n")

    result = approximate_maximum_matching(graph, epsilon, decomposer=kpr_decomposer)
    baseline = len(greedy_matching(graph))
    print("maximum matching (Cor 6.4):")
    print(f"  decomposition:  {result.value}")
    print(f"  greedy (½-apx): {baseline}\n")

    result = approximate_minimum_vertex_cover(graph, epsilon, decomposer=kpr_decomposer)
    baseline = len(greedy_vertex_cover(graph))
    print("minimum vertex cover (Cor 6.4):  [smaller is better]")
    print(f"  decomposition:  {result.value}")
    print(f"  greedy (2-apx): {baseline}\n")

    result = approximate_maximum_independent_set(graph, epsilon, decomposer=kpr_decomposer)
    baseline = len(greedy_maximal_independent_set(graph))
    print("maximum independent set (Cor 6.5):")
    print(f"  decomposition:  {result.value}")
    print(f"  greedy:         {baseline}")


if __name__ == "__main__":
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 150
    epsilon = float(sys.argv[2]) if len(sys.argv) > 2 else 0.25
    main(n, epsilon)
