"""Graceful-degradation report: classic CONGEST algorithms under faults.

Runs Luby MIS, BFS tree construction, and (Δ+1) trial colouring on the
columnar plane while the fault-injection runtime
(:mod:`repro.congest.runtime.faults`) crashes vertices, drops messages,
and delays delivery, then re-verifies each paper guarantee on the
surviving vertices with the :mod:`repro.congest.validators` checkers.
The printed table is the degradation curve: fault intensity vs the
fraction of checked guarantees that break.

Usage::

    python examples/resilience_report.py [n] [trials]
"""

import random
import sys

import networkx as nx

from repro.congest import (
    FaultPlan,
    Network,
    check_bfs_tree,
    check_coloring,
    check_mis,
)
from repro.congest.algorithms import ColumnarBFSTree
from repro.congest.classic import ColumnarLubyMIS, ColumnarTrialColoring
from repro.graphs import triangulated_grid


def seeded_inputs(graph, seed):
    rng = random.Random(seed)
    return {v: rng.randrange(1 << 30) for v in graph.nodes}


FAULT_POINTS = [
    ("none", FaultPlan()),
    ("crash p=0.01", FaultPlan(crash=0.01)),
    ("drop p=0.10", FaultPlan(drop=0.10)),
    ("drop p=0.30", FaultPlan(drop=0.30)),
    ("delay D=2", FaultPlan(delay=2)),
]


def degradation(graph, make_algorithm, check, *, needs_inputs, max_rounds,
                trials):
    """[(fault label, checked, violations, crashed, timeouts), ...]"""
    rows = []
    for label, plan in FAULT_POINTS:
        checked = violations = crashed = timeouts = 0
        for index in range(trials):
            net = Network(graph)
            inputs = seeded_inputs(graph, index) if needs_inputs else None
            try:
                outputs = net.run(
                    make_algorithm(), max_rounds=max_rounds, inputs=inputs,
                    plane="columnar",
                    faults=plan.reseed(index + 1) if plan.active else None,
                )
            except RuntimeError as exc:
                if "did not halt" not in str(exc):
                    raise
                timeouts += 1
                continue
            report = check(graph, outputs, net.metrics.crashed_vertices)
            checked += report.checked
            violations += report.violations
            crashed += net.metrics.crashed
        rows.append((label, checked, violations, crashed, timeouts))
    return rows


def print_rows(title, rows):
    print(f"{title}:")
    print(f"  {'faults':<14} {'checked':>8} {'violations':>11} "
          f"{'rate':>8} {'crashed':>8} {'timeouts':>9}")
    for label, checked, violations, crashed, timeouts in rows:
        rate = violations / checked if checked else 0.0
        print(f"  {label:<14} {checked:>8} {violations:>11} "
              f"{rate:>8.4f} {crashed:>8} {timeouts:>9}")
    print()


def main(n: int = 12, trials: int = 4) -> None:
    graph = triangulated_grid(n, n)
    root = next(iter(graph.nodes))
    delta = max(d for _, d in graph.degree)
    horizon = 30 * max(4, graph.number_of_nodes().bit_length() ** 2)
    print(f"instance: triangulated grid ({graph.number_of_nodes()} vertices, "
          f"{graph.number_of_edges()} edges), {trials} trials per point\n")

    print_rows(
        "maximal independent set (Luby)",
        degradation(
            graph, lambda: ColumnarLubyMIS(horizon),
            lambda g, out, dead: check_mis(g, out, crashed=dead),
            needs_inputs=True, max_rounds=horizon + 2, trials=trials,
        ),
    )
    # BFS runs to its horizon, so size it by the true radius: a slack of
    # a few rounds lets delayed frontiers land without giving the crash
    # adversary hundreds of extra rounds to kill every vertex.
    bfs_horizon = nx.eccentricity(graph, v=root) + 6
    print_rows(
        "BFS tree",
        degradation(
            graph, lambda: ColumnarBFSTree(root, bfs_horizon),
            lambda g, out, dead: check_bfs_tree(g, out, root, crashed=dead),
            needs_inputs=False, max_rounds=bfs_horizon + 2, trials=trials,
        ),
    )
    print_rows(
        "(Δ+1) colouring",
        degradation(
            graph, lambda: ColumnarTrialColoring(delta + 1, horizon),
            lambda g, out, dead: check_coloring(g, out, crashed=dead,
                                                palette=delta + 1),
            needs_inputs=True, max_rounds=horizon + 2, trials=trials,
        ),
    )
    print("fault-free rows validate the baseline guarantee; the faulty rows "
          "quantify how it erodes as the adversary strengthens.")


if __name__ == "__main__":
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 12
    trials = int(sys.argv[2]) if len(sys.argv) > 2 else 4
    main(n, trials)
